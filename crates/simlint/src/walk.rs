//! Deterministic workspace file discovery.
//!
//! The walk visits `crates/*/{src,tests,examples,benches}`, plus the
//! workspace-root `src/`, `tests/` and `examples/`, in sorted order,
//! and yields workspace-relative `.rs` paths (forward slashes). It
//! skips `target/` and any directory named `fixtures` — fixture files
//! are deliberately-broken inputs for the ui test suite, not workspace
//! code.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Ascends from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Directory names never descended into.
fn skipped_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for path in sorted_entries(dir)? {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !skipped_dir(&name) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path.clone());
        }
    }
    Ok(())
}

/// Lists every workspace `.rs` file to check, as paths relative to
/// `root`, in sorted order.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut abs: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for krate in sorted_entries(&crates)? {
            if !krate.is_dir() {
                continue;
            }
            for sub in ["src", "tests", "examples", "benches"] {
                collect_rs(&krate.join(sub), &mut abs)?;
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        collect_rs(&root.join(sub), &mut abs)?;
    }
    let mut rel: Vec<String> = abs
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rel.sort();
    Ok(rel)
}

/// The dependency lines of one manifest's `[dependencies]` /
/// `[dev-dependencies]` / `[build-dependencies]` sections. Handles the
/// three declaration shapes the workspace uses:
/// `foo.workspace = true`, `foo = { workspace = true }`, and
/// `foo = { path = "../foo" }`. Returns *package* names.
fn manifest_dep_names(text: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]"
                || line == "[dev-dependencies]"
                || line == "[build-dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `foo.workspace = true` → key before the first '.';
        // `foo = { ... }` → key before the first '='.
        let key_end = line
            .find('.')
            .into_iter()
            .chain(line.find('='))
            .min()
            .unwrap_or(line.len());
        let key = line[..key_end].trim().trim_matches('"');
        if !key.is_empty() {
            deps.push(key.to_string());
        }
    }
    deps
}

/// Parses the root manifest's `[workspace.dependencies]` table into a
/// package-name → crate-directory-name map (`fft2d` lives in
/// `crates/core`, so member manifests name deps by package, not dir).
fn workspace_dep_dirs(text: &str) -> std::collections::BTreeMap<String, String> {
    let mut map = std::collections::BTreeMap::new();
    let mut in_table = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if !in_table {
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let name = line[..eq].trim().trim_matches('"');
        if let Some(at) = line.find("path = \"") {
            let rest = &line[at + 8..];
            if let Some(end) = rest.find('"') {
                if let Some(dir) = rest[..end].rsplit('/').next() {
                    if !name.is_empty() && !dir.is_empty() {
                        map.insert(name.to_string(), dir.to_string());
                    }
                }
            }
        }
    }
    map
}

/// Reads the workspace dependency graph from the member manifests:
/// crate *directory* name → transitive closure of the workspace crate
/// directories it may link against (dev-dependencies included). The
/// root package's own dependencies are stored under `""`, matching
/// how the call graph classifies files outside `crates/`. The
/// call-graph resolver uses this to refuse edges into crates the
/// caller cannot even link against.
///
/// # Errors
///
/// Propagates I/O failures reading the manifests.
pub fn workspace_deps(root: &Path) -> io::Result<std::collections::BTreeMap<String, Vec<String>>> {
    use std::collections::{BTreeMap, BTreeSet};
    let root_manifest = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let dirs_by_package = workspace_dep_dirs(&root_manifest);
    let to_dir = |package: &str| -> String {
        dirs_by_package
            .get(package)
            .cloned()
            .unwrap_or_else(|| package.to_string())
    };
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    direct.insert(
        String::new(),
        manifest_dep_names(&root_manifest)
            .iter()
            .map(|p| to_dir(p))
            .collect(),
    );
    let crates = root.join("crates");
    if crates.is_dir() {
        for krate in sorted_entries(&crates)? {
            let dir = krate
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let Ok(text) = fs::read_to_string(krate.join("Cargo.toml")) else {
                continue;
            };
            let deps: BTreeSet<String> = manifest_dep_names(&text)
                .iter()
                .map(|p| to_dir(p))
                .filter(|d| *d != dir)
                .collect();
            direct.insert(dir, deps);
        }
    }
    // Transitive closure, so re-exported types resolve too.
    let names: Vec<String> = direct.keys().cloned().collect();
    let mut closed: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for name in &names {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack: Vec<String> = direct[name].iter().cloned().collect();
        while let Some(d) = stack.pop() {
            if seen.insert(d.clone()) {
                if let Some(next) = direct.get(&d) {
                    stack.extend(next.iter().cloned());
                }
            }
        }
        closed.insert(name.clone(), seen.into_iter().collect());
    }
    Ok(closed)
}

/// Whether a workspace-relative path is test code as a whole (under a
/// `tests/` or `benches/` directory).
pub fn path_is_test(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_and_bench_paths_are_detected() {
        assert!(path_is_test("crates/mem3d/tests/identity.rs"));
        assert!(path_is_test("tests/cross_crate.rs"));
        assert!(path_is_test("crates/layout/benches/transpose.rs"));
        assert!(!path_is_test("crates/mem3d/src/system.rs"));
        assert!(!path_is_test("crates/sim-exec/examples/sweep.rs"));
    }

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crate dir");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn dep_graph_reflects_the_manifests() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let deps = workspace_deps(&root).unwrap();
        // simlint links only sim-util — it must not gain edges into
        // the simulator crates, and they must not gain edges into it.
        assert_eq!(deps["simlint"], vec!["sim-util".to_string()]);
        assert!(!deps["tenancy"].contains(&"simlint".to_string()));
        // Package `fft2d` lives in `crates/core`: the dep map speaks
        // directory names throughout.
        assert!(deps["tenancy"].contains(&"core".to_string()));
        assert!(deps["tenancy"].contains(&"mem3d".to_string()));
        // Transitive: tenancy → sim-exec → sim-util.
        assert!(deps["tenancy"].contains(&"sim-util".to_string()));
        // The root package ("" — files outside crates/) has deps too.
        assert!(deps[""].contains(&"mem3d".to_string()));
        assert!(!deps[""].contains(&"simlint".to_string()));
    }

    #[test]
    fn manifest_dep_parsing_handles_all_declaration_shapes() {
        let text = "\
[package]
name = \"demo\"

[dependencies]
mem3d.workspace = true
fft2d = { workspace = true }
local = { path = \"../local\" }

[dev-dependencies]
alloc-counter.workspace = true

[features]
extra = []
";
        let deps = manifest_dep_names(text);
        assert_eq!(deps, vec!["mem3d", "fft2d", "local", "alloc-counter"]);
    }

    #[test]
    fn walk_includes_own_sources_and_skips_fixtures() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let files = workspace_files(&root).unwrap();
        assert!(files.iter().any(|f| f == "crates/simlint/src/walk.rs"));
        assert!(files.iter().all(|f| !f.contains("/fixtures/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk output must be sorted");
    }
}
