//! Deterministic workspace file discovery.
//!
//! The walk visits `crates/*/{src,tests,examples,benches}`, plus the
//! workspace-root `src/`, `tests/` and `examples/`, in sorted order,
//! and yields workspace-relative `.rs` paths (forward slashes). It
//! skips `target/` and any directory named `fixtures` — fixture files
//! are deliberately-broken inputs for the ui test suite, not workspace
//! code.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Ascends from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Directory names never descended into.
fn skipped_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for path in sorted_entries(dir)? {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !skipped_dir(&name) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path.clone());
        }
    }
    Ok(())
}

/// Lists every workspace `.rs` file to check, as paths relative to
/// `root`, in sorted order.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut abs: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for krate in sorted_entries(&crates)? {
            if !krate.is_dir() {
                continue;
            }
            for sub in ["src", "tests", "examples", "benches"] {
                collect_rs(&krate.join(sub), &mut abs)?;
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        collect_rs(&root.join(sub), &mut abs)?;
    }
    let mut rel: Vec<String> = abs
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rel.sort();
    Ok(rel)
}

/// Whether a workspace-relative path is test code as a whole (under a
/// `tests/` or `benches/` directory).
pub fn path_is_test(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_and_bench_paths_are_detected() {
        assert!(path_is_test("crates/mem3d/tests/identity.rs"));
        assert!(path_is_test("tests/cross_crate.rs"));
        assert!(path_is_test("crates/layout/benches/transpose.rs"));
        assert!(!path_is_test("crates/mem3d/src/system.rs"));
        assert!(!path_is_test("crates/sim-exec/examples/sweep.rs"));
    }

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crate dir");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn walk_includes_own_sources_and_skips_fixtures() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let files = workspace_files(&root).unwrap();
        assert!(files.iter().any(|f| f == "crates/simlint/src/walk.rs"));
        assert!(files.iter().all(|f| !f.contains("/fixtures/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk output must be sorted");
    }
}
