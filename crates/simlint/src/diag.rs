//! Diagnostics: what a rule reports and how it is rendered.

use sim_util::json::JsonObject;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; exits 0 unless `--deny-all` promotes it.
    Warning,
    /// A rule violation; any error makes the run exit non-zero.
    Error,
}

impl Severity {
    /// Lower-case label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `D001`).
    pub rule: &'static str,
    /// Severity before any `--deny-all` promotion.
    pub severity: Severity,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Name of the enclosing function, when known.
    pub enclosing_fn: Option<String>,
    /// Short stable description of *what* was matched (`unwrap`,
    /// `HashMap`, `as u32`, ...) — the line/col-independent part of the
    /// baseline fingerprint (see [`crate::baseline`]). Messages may
    /// embed call chains that shift as code moves; the key must not.
    pub key: String,
}

impl Diagnostic {
    /// Renders `path:line:col: level[RULE] message` for terminals.
    pub fn render_human(&self) -> String {
        let mut s = format!(
            "{}:{}:{}: {}[{}] {}",
            self.path,
            self.line,
            self.col,
            self.severity.label(),
            self.rule,
            self.message
        );
        if let Some(f) = &self.enclosing_fn {
            s.push_str(&format!(" (in fn {f})"));
        }
        s
    }

    /// Renders one JSON-lines record via [`sim_util::json`].
    pub fn render_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("rule", self.rule);
        o.field_str("severity", self.severity.label());
        o.field_str("path", &self.path);
        o.field_u64("line", u64::from(self.line));
        o.field_u64("col", u64::from(self.col));
        o.field_str("message", &self.message);
        match &self.enclosing_fn {
            Some(f) => o.field_str("fn", f),
            None => o.field_raw("fn", "null"),
        };
        o.field_str("key", &self.key);
        o.finish()
    }
}

/// Sorts diagnostics into the canonical emission order: by path, then
/// line, then column, then rule id. The walk already visits files in
/// sorted order; this makes the contract hold regardless of rule
/// registration order within a file.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_util::json::{parse, Value};

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "D001",
            severity: Severity::Error,
            path: "crates/x/src/lib.rs".to_string(),
            line: 10,
            col: 5,
            message: "wall-clock read".to_string(),
            enclosing_fn: Some("tick".to_string()),
            key: "Instant::now".to_string(),
        }
    }

    #[test]
    fn human_format() {
        assert_eq!(
            sample().render_human(),
            "crates/x/src/lib.rs:10:5: error[D001] wall-clock read (in fn tick)"
        );
    }

    #[test]
    fn json_round_trips() {
        let text = sample().render_json();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("rule").and_then(Value::as_str), Some("D001"));
        assert_eq!(v.get("line").and_then(Value::as_i64), Some(10));
        assert_eq!(v.get("fn").and_then(Value::as_str), Some("tick"));
        assert_eq!(v.to_json(), text);
    }

    #[test]
    fn sort_orders_by_position() {
        let mut a = sample();
        a.line = 2;
        let mut b = sample();
        b.line = 1;
        let mut v = vec![a, b];
        sort(&mut v);
        assert_eq!(v[0].line, 1);
    }
}
