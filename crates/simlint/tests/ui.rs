//! Fixture-based ui tests: every `tests/fixtures/*.rs` file declares
//! the workspace path it pretends to live at via a
//! `// simlint-fixture-path: <path>` header and is paired with a
//! `.expected` file listing the diagnostics it must produce, one per
//! line as `{line}:{col} {level}[{rule}] {message}`.

use std::fs;
use std::path::{Path, PathBuf};

use simlint::{check_source, Diagnostic};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixtures() -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = fs::read_dir(fixture_dir())
        .expect("fixtures dir exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    v.sort();
    assert!(!v.is_empty(), "no fixtures found");
    v
}

fn logical_path(src: &str, fixture: &Path) -> String {
    src.lines()
        .find_map(|l| l.strip_prefix("// simlint-fixture-path:"))
        .unwrap_or_else(|| panic!("{} is missing its fixture-path header", fixture.display()))
        .trim()
        .to_string()
}

fn render(d: &Diagnostic) -> String {
    let mut s = format!(
        "{}:{} {}[{}] {}",
        d.line,
        d.col,
        d.severity.label(),
        d.rule,
        d.message
    );
    if let Some(f) = &d.enclosing_fn {
        s.push_str(&format!(" (in fn {f})"));
    }
    s
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let mut failures = Vec::new();
    for fixture in fixtures() {
        let src = fs::read_to_string(&fixture).expect("readable fixture");
        let path = logical_path(&src, &fixture);
        let got: Vec<String> = check_source(&path, &src).iter().map(render).collect();
        let expected_file = fixture.with_extension("expected");
        let expected_text = fs::read_to_string(&expected_file).unwrap_or_else(|_| {
            panic!("{} has no .expected file", fixture.display());
        });
        let expected: Vec<String> = expected_text.lines().map(str::to_string).collect();
        if got != expected {
            failures.push(format!(
                "== {} (as {path})\n-- expected:\n{}\n-- got:\n{}",
                fixture.display(),
                expected.join("\n"),
                got.join("\n"),
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n\n"));
}

#[test]
fn every_rule_has_a_positive_fixture() {
    // Guards fixture rot: each shipped rule must keep at least one
    // fixture that exercises a hit.
    let mut uncovered: Vec<&str> = vec![
        "D001", "D002", "D003", "H001", "P001", "R001", "X001", "A001", "A002",
    ];
    for fixture in fixtures() {
        let expected = fs::read_to_string(fixture.with_extension("expected")).unwrap_or_default();
        uncovered.retain(|r| !expected.contains(&format!("[{r}]")));
    }
    assert!(
        uncovered.is_empty(),
        "rules without a hit fixture: {uncovered:?}"
    );
}

#[test]
fn json_output_round_trips_through_sim_util_json() {
    use sim_util::json::{parse, Value};

    let fixture = fixture_dir().join("p001_hit.rs");
    let src = fs::read_to_string(&fixture).expect("readable fixture");
    let path = logical_path(&src, &fixture);
    let diags = check_source(&path, &src);
    assert!(!diags.is_empty());
    for d in &diags {
        let text = d.render_json();
        let v = parse(&text).expect("diagnostic JSON parses");
        assert_eq!(v.get("rule").and_then(Value::as_str), Some(d.rule));
        assert_eq!(
            v.get("severity").and_then(Value::as_str),
            Some(d.severity.label())
        );
        assert_eq!(v.get("path").and_then(Value::as_str), Some(path.as_str()));
        assert_eq!(
            v.get("line").and_then(Value::as_i64),
            Some(i64::from(d.line))
        );
        assert_eq!(v.get("col").and_then(Value::as_i64), Some(i64::from(d.col)));
        assert_eq!(
            v.get("message").and_then(Value::as_str),
            Some(d.message.as_str())
        );
        // Emit → parse → emit is byte-identical (key order preserved).
        assert_eq!(v.to_json(), text);
    }
}
