//! Fixture-based ui tests: every `tests/fixtures/*.rs` file declares
//! the workspace path it pretends to live at via a
//! `// simlint-fixture-path: <path>` header and is paired with a
//! `.expected` file listing the diagnostics it must produce, one per
//! line as `{line}:{col} {level}[{rule}] {message}`.
//!
//! A *directory* under `tests/fixtures/` is a multi-file fixture: its
//! `.rs` members (each with its own fixture-path header) are analysed
//! together as one workspace — this is how the interprocedural rules
//! prove cross-file reachability — and its `expected` file lists the
//! combined diagnostics as `{path}:{line}:{col} {level}[{rule}]
//! {message}`.

use std::fs;
use std::path::{Path, PathBuf};

use simlint::{check_source, check_sources, Diagnostic};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixtures() -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = fs::read_dir(fixture_dir())
        .expect("fixtures dir exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    v.sort();
    assert!(!v.is_empty(), "no fixtures found");
    v
}

fn dir_fixtures() -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = fs::read_dir(fixture_dir())
        .expect("fixtures dir exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.is_dir())
        .collect();
    v.sort();
    assert!(!v.is_empty(), "no directory fixtures found");
    v
}

fn logical_path(src: &str, fixture: &Path) -> String {
    src.lines()
        .find_map(|l| l.strip_prefix("// simlint-fixture-path:"))
        .unwrap_or_else(|| panic!("{} is missing its fixture-path header", fixture.display()))
        .trim()
        .to_string()
}

fn render(d: &Diagnostic) -> String {
    let mut s = format!(
        "{}:{} {}[{}] {}",
        d.line,
        d.col,
        d.severity.label(),
        d.rule,
        d.message
    );
    if let Some(f) = &d.enclosing_fn {
        s.push_str(&format!(" (in fn {f})"));
    }
    s
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let mut failures = Vec::new();
    for fixture in fixtures() {
        let src = fs::read_to_string(&fixture).expect("readable fixture");
        let path = logical_path(&src, &fixture);
        let got: Vec<String> = check_source(&path, &src).iter().map(render).collect();
        let expected_file = fixture.with_extension("expected");
        let expected_text = fs::read_to_string(&expected_file).unwrap_or_else(|_| {
            panic!("{} has no .expected file", fixture.display());
        });
        let expected: Vec<String> = expected_text.lines().map(str::to_string).collect();
        if got != expected {
            failures.push(format!(
                "== {} (as {path})\n-- expected:\n{}\n-- got:\n{}",
                fixture.display(),
                expected.join("\n"),
                got.join("\n"),
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n\n"));
}

#[test]
fn dir_fixtures_match_expected_diagnostics() {
    let mut failures = Vec::new();
    for dir in dir_fixtures() {
        let mut members: Vec<PathBuf> = fs::read_dir(&dir)
            .expect("readable fixture dir")
            .map(|e| e.expect("readable entry").path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        members.sort();
        assert!(!members.is_empty(), "{} has no .rs members", dir.display());
        let sources: Vec<(String, String)> = members
            .iter()
            .map(|m| {
                let src = fs::read_to_string(m).expect("readable member");
                (logical_path(&src, m), src)
            })
            .collect();
        let analysis = check_sources(&sources);
        let got: Vec<String> = analysis
            .diags
            .iter()
            .map(|d| format!("{}:{}", d.path, render(d)))
            .collect();
        let expected_file = dir.join("expected");
        let expected_text = fs::read_to_string(&expected_file)
            .unwrap_or_else(|_| panic!("{} has no expected file", dir.display()));
        let expected: Vec<String> = expected_text.lines().map(str::to_string).collect();
        if got != expected {
            failures.push(format!(
                "== {}\n-- expected:\n{}\n-- got:\n{}",
                dir.display(),
                expected.join("\n"),
                got.join("\n"),
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n\n"));
}

#[test]
fn every_rule_has_a_positive_fixture() {
    // Guards fixture rot: each shipped rule must keep at least one
    // fixture that exercises a hit.
    let mut uncovered: Vec<&str> = vec![
        "D001", "D002", "D003", "H001", "P001", "R001", "X001", "A001", "A002", "A003", "D101",
        "H101", "P101", "T101",
    ];
    for fixture in fixtures() {
        let expected = fs::read_to_string(fixture.with_extension("expected")).unwrap_or_default();
        uncovered.retain(|r| !expected.contains(&format!("[{r}]")));
    }
    for dir in dir_fixtures() {
        let expected = fs::read_to_string(dir.join("expected")).unwrap_or_default();
        uncovered.retain(|r| !expected.contains(&format!("[{r}]")));
    }
    assert!(
        uncovered.is_empty(),
        "rules without a hit fixture: {uncovered:?}"
    );
}

#[test]
fn interprocedural_rules_catch_what_lexical_rules_miss() {
    // The acceptance bar for the `*101` family: on the same fixture,
    // the helper file analysed *alone* (lexical rules only see one
    // un-annotated file) reports nothing, while the workspace analysis
    // flags the violation one call level deep.
    for (dir, rule) in [("p101_hit", "P101"), ("h101_hit", "H101")] {
        let helper = fixture_dir().join(dir).join("helper.rs");
        let src = fs::read_to_string(&helper).expect("readable helper");
        let path = logical_path(&src, &helper);
        let alone = check_source(&path, &src);
        assert!(
            alone
                .iter()
                .all(|d| !d.rule.starts_with('P') && !d.rule.starts_with('H')),
            "{dir}: helper alone should be lexically invisible: {alone:?}"
        );
        let expected = fs::read_to_string(fixture_dir().join(dir).join("expected")).unwrap();
        assert!(
            expected.contains(&format!("[{rule}]")),
            "{dir}: workspace analysis must flag {rule}"
        );
    }
}

#[test]
fn json_output_round_trips_through_sim_util_json() {
    use sim_util::json::{parse, Value};

    let fixture = fixture_dir().join("p001_hit.rs");
    let src = fs::read_to_string(&fixture).expect("readable fixture");
    let path = logical_path(&src, &fixture);
    let diags = check_source(&path, &src);
    assert!(!diags.is_empty());
    for d in &diags {
        let text = d.render_json();
        let v = parse(&text).expect("diagnostic JSON parses");
        assert_eq!(v.get("rule").and_then(Value::as_str), Some(d.rule));
        assert_eq!(
            v.get("severity").and_then(Value::as_str),
            Some(d.severity.label())
        );
        assert_eq!(v.get("path").and_then(Value::as_str), Some(path.as_str()));
        assert_eq!(
            v.get("line").and_then(Value::as_i64),
            Some(i64::from(d.line))
        );
        assert_eq!(v.get("col").and_then(Value::as_i64), Some(i64::from(d.col)));
        assert_eq!(
            v.get("message").and_then(Value::as_str),
            Some(d.message.as_str())
        );
        // Emit → parse → emit is byte-identical (key order preserved).
        assert_eq!(v.to_json(), text);
    }
}
