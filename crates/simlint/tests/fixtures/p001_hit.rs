// simlint-fixture-path: crates/mem3d/src/system.rs
// Panicking constructs on the service path are flagged; a justified
// allow silences one; unwrap_or-style combinators never match.
// simlint::entry(service_path)
fn service(x: Option<u64>, y: Option<u64>) -> u64 {
    let a = x.unwrap();
    let b = y.expect("y must be set");
    if a + b == 0 {
        panic!("impossible");
    }
    // simlint::allow(P001): bounds were checked by the caller
    let c = x.unwrap();
    a + b + c + x.unwrap_or_default()
}
