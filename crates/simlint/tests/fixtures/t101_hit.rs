// simlint-fixture-path: crates/mem3d/src/convert.rs
// f32/f64 crossing a fn boundary into clock construction is flagged
// at depth 1: the fn constructs a clock itself or a direct callee
// does. Two hops away is deliberately not flagged (DESIGN.md), and
// integer-signature fns and test code stay clean.

pub struct Picos(pub u64);

pub fn from_ns(ns: f64) -> Picos {
    Picos((ns * 1_000.0) as u64)
}

pub fn one_hop(ns: f64) -> Picos {
    make(ns)
}

fn make(x: f64) -> Picos {
    Picos(x as u64)
}

pub fn two_hops(ns: f64) -> Picos {
    one_hop(ns)
}

pub fn integral(steps: u64) -> Picos {
    make(steps as f64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_conversions_are_exempt(ns: f64) {
        let _ = Picos(ns as u64);
    }
}
