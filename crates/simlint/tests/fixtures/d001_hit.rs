// simlint-fixture-path: crates/sim-exec/src/pool.rs
// A wall-clock read on a deterministic path is flagged; the type name
// alone (field, use) is not.
use std::time::Instant;

struct Job {
    deadline: Option<Instant>,
}

fn poll(job: &Job) -> bool {
    let now = Instant::now();
    job.deadline.is_some_and(|d| now >= d)
}

fn measure() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
