// simlint-fixture-path: crates/core/src/explore.rs
// Hash-ordered collections in a simulation crate's output path are
// flagged; the same types inside test code are exempt.
use std::collections::{HashMap, HashSet};

fn aggregate(keys: &[u64]) -> usize {
    let mut seen = HashSet::new();
    for k in keys {
        seen.insert(*k);
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn membership_checks_are_fine() {
        let mut m = std::collections::HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
