// simlint-fixture-path: crates/mem3d/src/timing.rs
// Float arithmetic in a timing module is flagged; the allowlisted
// boundary converters are exempt.

pub struct Picos(pub u64);

fn accumulate(ps: u64) -> u64 {
    let scaled = ps as f64 * 1.5;
    scaled as u64
}

pub fn as_ns_f64(p: &Picos) -> f64 {
    p.0 as f64 / 1_000.0
}
