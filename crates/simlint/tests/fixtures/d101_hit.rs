// simlint-fixture-path: crates/permute/src/report.rs
// A hash-ordered collection inside a fn that (transitively) emits
// output is flagged even though this path is outside the lexical
// D002 scope list. The pure fn below never reaches an emitter and
// stays clean.

pub fn tally(rows: &[Row]) -> u64 {
    let mut counts = HashMap::new();
    for r in rows {
        *counts.entry(r.id).or_insert(0u64) += 1;
    }
    emit(counts.len());
    counts.len() as u64
}

fn emit(n: usize) {
    println!("{n}");
}

pub fn pure(rows: &[Row]) -> usize {
    let mut seen = HashSet::new();
    for r in rows {
        seen.insert(r.id);
    }
    seen.len()
}
