// simlint-fixture-path: crates/core/src/explore.rs
// Deterministic idioms pass untouched: BTreeMap, checked conversions,
// integer time, proper error flow. Strings and docs mentioning
// HashMap or Instant::now() are not code.

use std::collections::BTreeMap;

/// Aggregates per-layout results (docs may say `HashMap` freely).
fn aggregate(items: &[(u64, u64)]) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for (k, v) in items {
        out.insert(*k, *v);
    }
    let _note = "Instant::now() inside a string is fine";
    out
}
