// simlint-fixture-path: crates/mem3d/src/dispatch.rs
// Same shape as p101_hit, but the transitive panic carries a
// justified allow — the finding is silenced and the allow is used
// (no A002).

// simlint::entry(service_path)
pub fn dispatch(req: Request) -> Response {
    route::classify(req)
}
