// simlint-fixture-path: crates/mem3d/src/route.rs

pub fn classify(req: Request) -> Response {
    let kind = req.kind.unwrap(); // simlint::allow(P101): kind is validated at enqueue time
    Response { kind }
}
