// simlint-fixture-path: crates/sim-exec/src/cancel.rs
// Relaxed atomics in sim-exec are flagged outside the allowlisted
// counters.
use std::sync::atomic::{AtomicBool, Ordering};

fn is_cancelled(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}

fn cancel(flag: &AtomicBool) {
    flag.store(true, Ordering::Release);
}
