// simlint-fixture-path: crates/mem3d/src/convert.rs
// A justified allow on the fn header silences T101.

pub struct Picos(pub u64);

// simlint::allow(T101): boundary converter — callers own the rounding
pub fn from_ns(ns: f64) -> Picos {
    Picos((ns * 1_000.0) as u64)
}
