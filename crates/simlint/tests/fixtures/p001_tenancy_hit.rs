// simlint-fixture-path: crates/tenancy/src/arbiter.rs
// The tenancy arbitration path is P001 scope: a panicking pick would
// abort every tenant's job, so indexing mistakes must surface as
// fallback choices, never as panics. Tests stay exempt.
// simlint::entry(service_path)
fn pick(credit: &mut Vec<u64>, vault: usize, owners: &[usize]) -> usize {
    let lane = credit.get_mut(vault).unwrap();
    *lane += 1;
    if owners.is_empty() {
        unreachable!("arbiter called with no contenders");
    }
    owners[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
