// simlint-fixture-path: crates/core/src/explore.rs
// An allow naming an unknown rule, or missing its justification, is
// itself an error — and does not suppress anything.

fn f() -> u64 {
    // simlint::allow(Z999): no such rule
    let a = 1;
    // simlint::allow(D002)
    let b = 2;
    a + b
}
