// simlint-fixture-path: crates/layout/src/irredundant.rs
// Since the R001 extension the competitor layouts' address bijections
// are covered: a narrowing cast in `addr()` arithmetic wraps silently
// on large-N matrices, while widening to u64 stays allowed.

fn addr(block: u64, elem_bytes: usize) -> u32 {
    let flat = block * elem_bytes as u64;
    flat as u32
}
