// simlint-fixture-path: crates/mem3d/src/address.rs
// Narrowing `as` casts in address arithmetic are flagged; widening
// casts and the mask-proved allowlisted functions are not.

fn decode(addr: u64) -> (u32, usize) {
    let row = addr as u32;
    let col = (addr >> 32) as usize;
    let wide = row as u64;
    let _ = wide;
    (row, col)
}

fn fields(addr: u64) -> u32 {
    (addr & 0xffff_ffff) as u32
}
