// simlint-fixture-path: crates/core/src/explore.rs
// A well-formed allow that suppresses nothing is reported stale, so
// suppressions cannot quietly outlive the code they excused.

fn f() -> u64 {
    // simlint::allow(D002): there used to be a HashMap here
    let a = 1;
    a
}
