// simlint-fixture-path: crates/mem3d/src/dispatch.rs
// The entry file is clean; the panic sits one call level down in a
// file no lexical rule covers (no annotation there) — only the call
// graph sees it.

// simlint::entry(service_path)
pub fn dispatch(req: Request) -> Response {
    route::classify(req)
}
