// simlint-fixture-path: crates/mem3d/src/route.rs
// Not annotated, so lexical P001 never runs here. The unwrap is still
// a service-path panic because `dispatch` reaches it. The island fn
// and the test module stay exempt: unreachable and test code never
// gate.

pub fn classify(req: Request) -> Response {
    let kind = req.kind.unwrap();
    Response { kind }
}

fn island(x: Option<u64>) -> u64 {
    x.expect("never called from any entry")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
