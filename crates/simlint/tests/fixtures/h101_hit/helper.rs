// simlint-fixture-path: crates/tenancy/src/scratch.rs
// Not annotated: the collect() is invisible to lexical H001 but still
// runs once per beat via `beat` → `gather`. The island fn is
// unreachable and stays clean.

pub fn gather(state: &mut State) -> u64 {
    let ids: Vec<u64> = state.jobs.iter().map(|j| j.id).collect();
    ids.len() as u64
}

fn island() -> Box<u64> {
    Box::new(0)
}
