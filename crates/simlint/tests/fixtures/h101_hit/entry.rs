// simlint-fixture-path: crates/tenancy/src/beat.rs
// The per-beat entry is clean; the allocation hides one call level
// down in an un-annotated file that lexical H001 never scans.

// simlint::entry(hot_path)
pub fn beat(state: &mut State) -> u64 {
    scratch::gather(state)
}
