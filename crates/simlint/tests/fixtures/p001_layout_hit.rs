// simlint-fixture-path: crates/layout/src/family.rs
// The family registry is P001 scope: `FamilyId::build` is how the
// explorer probes infeasible candidates, so a panicking constructor
// aborts a whole design-space sweep instead of landing the parameter
// in `SkipCounts`. Tests stay exempt.
// simlint::entry(service_path)
fn build(heights: &[usize], param: usize) -> usize {
    let h = heights.iter().find(|&&h| h == param).expect("feasible h");
    if *h == 0 {
        panic!("zero block height");
    }
    *h
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<usize> = Some(4);
        assert_eq!(v.unwrap(), 4);
    }
}
