// simlint-fixture-path: crates/core/src/phases.rs
// The allocation-free idioms pass untouched: clearing and refilling a
// hoisted buffer, popping from a pooled queue, lazy iteration. Docs
// mentioning `Vec::new()` or `vec![...]` are not code.
// simlint::entry(hot_path)
/// Reuses a hoisted buffer (docs may say `Vec::new()` freely).
fn beat(pending: &mut PendingWrites, scratch: &mut Vec<u64>, ops: &[u64]) -> u64 {
    scratch.clear();
    for op in ops {
        scratch.push(*op);
    }
    while let Some(w) = pending.pop_front() {
        scratch.push(w);
    }
    let _note = "vec![...] inside a string is fine";
    scratch.iter().sum()
}
