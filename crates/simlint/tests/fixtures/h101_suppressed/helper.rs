// simlint-fixture-path: crates/tenancy/src/scratch.rs

pub fn gather(state: &mut State) -> u64 {
    // simlint::allow(H101): amortized — grows once, reused across beats
    let ids: Vec<u64> = state.jobs.iter().map(|j| j.id).collect();
    ids.len() as u64
}
