// simlint-fixture-path: crates/tenancy/src/beat.rs
// Same shape as h101_hit, with the allocation justified in place.

// simlint::entry(hot_path)
pub fn beat(state: &mut State) -> u64 {
    scratch::gather(state)
}
