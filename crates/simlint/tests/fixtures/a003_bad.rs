// simlint-fixture-path: crates/mem3d/src/bad_entries.rs
// Malformed entry annotations are themselves findings: unknown scope,
// missing parens, and a marker with no fn to attach to.

// simlint::entry(turbo_path)
pub fn f() {}

// simlint::entry service_path
pub fn g() {}

// simlint::entry(service_path)
