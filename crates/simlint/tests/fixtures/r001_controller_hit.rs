// simlint-fixture-path: crates/mem3d/src/controller.rs
// Since the R001 extension the per-vault controller's timing code is
// covered too: narrowing `as` casts on clock values are flagged, while
// widening casts (the fused loops' u64 accumulations) stay allowed.

fn arrive(t_fs: u128) -> u32 {
    let ps = (t_fs / 1_000) as u32;
    let wide = ps as u64;
    let _ = wide;
    ps
}
