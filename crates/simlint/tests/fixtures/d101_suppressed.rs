// simlint-fixture-path: crates/permute/src/report.rs
// A justified allow on the collection silences D101.

pub fn tally(rows: &[Row]) -> u64 {
    // simlint::allow(D101): keys are sorted before emission
    let mut counts = HashMap::new();
    for r in rows {
        *counts.entry(r.id).or_insert(0u64) += 1;
    }
    emit(counts.len());
    counts.len() as u64
}

fn emit(n: usize) {
    println!("{n}");
}
