// simlint-fixture-path: crates/tenancy/src/service.rs
// Construction-time allocations are legitimate when justified: these
// run once per service run, not per beat. The justified allow names
// the setup path; test code is exempt by construction.
// simlint::entry(hot_path)
fn setup(tenants: usize) -> Vec<Slot> {
    // simlint::allow(H001): run-setup allocation, sized once before the event loop
    let slots = vec![Slot::default(); tenants];
    slots
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_vectors_in_tests_are_fine() {
        let v: Vec<u64> = (0..4).collect();
        assert_eq!(v.to_vec().len(), 4);
    }
}
