// simlint-fixture-path: crates/sim-exec/src/pool.rs
// A justified allow silences the hit; #[cfg(test)] code is exempt by
// construction. Neither produces a diagnostic.
use std::time::Instant;

fn poll() -> Instant {
    // simlint::allow(D001): deadline enforcement is wall-clock by design
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_in_tests_is_fine() {
        let t = Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}
