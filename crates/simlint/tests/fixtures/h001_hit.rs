// simlint-fixture-path: crates/tenancy/src/service.rs
// Allocation constructs inside the per-beat event loop are flagged:
// every one of these runs once per grant, and the steady-state
// contract is zero heap allocations per beat.
// simlint::entry(hot_path)
fn arbitrate(running: &[Job], vault: usize) -> usize {
    let mut contenders = Vec::new();
    let owners = vec![0usize; running.len()];
    let boxed = Box::new(running.first());
    let ready: Vec<u64> = running.iter().map(|r| r.ready).collect();
    let copy = owners.to_vec();
    pick(&contenders, &owners, &ready, &copy, &boxed)
}
