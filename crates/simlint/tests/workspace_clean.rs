//! The workspace itself must be simlint-clean: `cargo test` fails on
//! any diagnostic, independent of the tier-1 script invoking the
//! binary.

use std::path::Path;

#[test]
fn workspace_has_no_diagnostics() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = simlint::walk::find_workspace_root(here).expect("workspace root");
    let (diags, files) = simlint::check_workspace(&root).expect("workspace walk");
    assert!(files > 50, "walk looks truncated: only {files} files");
    let rendered: Vec<String> = diags.iter().map(|d| d.render_human()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has simlint diagnostics:\n{}",
        rendered.join("\n")
    );
}
