//! The workspace itself must be simlint-clean *modulo the committed
//! baseline*: `cargo test` fails on any new diagnostic, independent of
//! the tier-1 script invoking the binary. The same run doubles as the
//! analyzer's self-performance gate — a full-workspace interprocedural
//! pass must stay interactive.

use std::path::Path;
use std::time::{Duration, Instant};

/// Full-workspace lint budget. The pass is pure in-memory string
/// processing; blowing this means something superlinear crept into
/// the parser or the reachability sweeps.
const LINT_BUDGET: Duration = Duration::from_secs(10);

#[test]
fn workspace_has_no_new_diagnostics_and_lints_within_budget() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = simlint::walk::find_workspace_root(here).expect("workspace root");

    let started = Instant::now();
    let analysis = simlint::check_workspace(&root).expect("workspace walk");
    let elapsed = started.elapsed();

    assert!(
        analysis.files > 50,
        "walk looks truncated: only {} files",
        analysis.files
    );

    let text = std::fs::read_to_string(root.join(".simlint-baseline.json"))
        .expect(".simlint-baseline.json at workspace root");
    let base = simlint::baseline::Baseline::parse(&text).expect("baseline parses");
    let (new, _known, stale) = base.apply(analysis.diags);

    let rendered: Vec<String> = new.iter().map(|d| d.render_human()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has simlint diagnostics not in the baseline:\n{}",
        rendered.join("\n")
    );
    assert!(
        stale.is_empty(),
        "baseline entries match nothing (fixed? rerun --write-baseline):\n{}",
        stale.join("\n")
    );

    assert!(
        elapsed <= LINT_BUDGET,
        "full-workspace lint took {elapsed:?}, budget is {LINT_BUDGET:?}"
    );
}

#[test]
fn callgraph_covers_the_core_service_spine() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = simlint::walk::find_workspace_root(here).expect("workspace root");
    let analysis = simlint::check_workspace(&root).expect("workspace walk");
    let g = &analysis.graph;

    let idx = |qual: &str| {
        g.fns
            .iter()
            .position(|f| f.qual == qual)
            .unwrap_or_else(|| panic!("fn `{qual}` missing from call graph"))
    };

    // The entry annotations committed in the tree must be visible.
    assert!(
        !g.entries("service_path").is_empty(),
        "no service_path entries found in the workspace"
    );
    assert!(
        !g.entries("hot_path").is_empty(),
        "no hot_path entries found in the workspace"
    );

    // The memory-system service spine is connected: `service` is
    // reachable from the declared service entries.
    let service = idx("mem3d::system::MemorySystem::service");
    let r = g.reach(&g.entries("service_path"));
    assert!(
        r.visited[service],
        "MemorySystem::service not reachable from service_path entries"
    );
}
