//! Twiddle-factor ROMs: the lookup tables of the TFC unit (Fig. 2c).

use crate::Cplx;

/// A read-only table of twiddle factors `W_order^t` for `t < len`,
/// modelling one of the "functional ROMs" in the TFC generation logic.
///
/// The inverse transform conjugates the table at construction time, so
/// lookups stay branch-free as in hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct TwiddleRom {
    order: usize,
    table: Vec<Cplx>,
}

impl TwiddleRom {
    /// Builds a ROM of `len` entries of `W_order^t`, conjugated when
    /// `inverse` is set.
    ///
    /// # Panics
    ///
    /// Panics if `order` is zero.
    pub fn new(order: usize, len: usize, inverse: bool) -> Self {
        assert!(order > 0, "twiddle order must be non-zero");
        let table = (0..len)
            .map(|t| {
                let w = Cplx::twiddle(order, t % order);
                if inverse {
                    w.conj()
                } else {
                    w
                }
            })
            .collect();
        TwiddleRom { order, table }
    }

    /// The `n` of `W_n^t`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Entries stored (the ROM depth in 64-bit words).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` for an empty ROM.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Looks up `W_order^t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is beyond the ROM depth.
    pub fn lookup(&self, t: usize) -> Cplx {
        self.table[t]
    }

    /// ROM footprint in bytes (one 64-bit complex word per entry).
    pub fn bytes(&self) -> usize {
        self.table.len() * Cplx::STORAGE_BYTES as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_table_matches_twiddles() {
        let rom = TwiddleRom::new(8, 8, false);
        for t in 0..8 {
            assert!((rom.lookup(t) - Cplx::twiddle(8, t)).abs() < 1e-15);
        }
        assert_eq!(rom.order(), 8);
        assert_eq!(rom.len(), 8);
        assert!(!rom.is_empty());
        assert_eq!(rom.bytes(), 64);
    }

    #[test]
    fn inverse_table_is_conjugated() {
        let fwd = TwiddleRom::new(16, 12, false);
        let inv = TwiddleRom::new(16, 12, true);
        for t in 0..12 {
            assert!((fwd.lookup(t).conj() - inv.lookup(t)).abs() < 1e-15);
        }
    }

    #[test]
    fn long_tables_wrap_modulo_order() {
        let rom = TwiddleRom::new(4, 9, false);
        assert!((rom.lookup(4) - rom.lookup(0)).abs() < 1e-15);
        assert!((rom.lookup(7) - rom.lookup(3)).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn lookup_past_depth_panics() {
        let rom = TwiddleRom::new(8, 4, false);
        let _ = rom.lookup(4);
    }
}
