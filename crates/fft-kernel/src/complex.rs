//! A minimal complex-number type.
//!
//! The datapath works on 64-bit complex words (the paper: "each data
//! element is a complex number including both its real part and imaginary
//! part, hence the data width is 64 bit" — 2 × 32-bit floats in hardware).
//! The simulator computes in `f64` for accuracy; the *storage* width used
//! for bandwidth accounting is [`Cplx::STORAGE_BYTES`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cplx {
    /// Additive identity.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Cplx = Cplx { re: 0.0, im: 1.0 };

    /// Bytes one element occupies in memory and on the TSVs
    /// (2 × 32-bit floats, as in the paper's FPGA datapath).
    pub const STORAGE_BYTES: u32 = 8;

    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// `e^(i·theta)`.
    pub fn expi(theta: f64) -> Self {
        Cplx {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// The twiddle factor `W_n^k = e^(−2πik/n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn twiddle(n: usize, k: usize) -> Self {
        assert!(n > 0, "twiddle order must be non-zero");
        Cplx::expi(-2.0 * std::f64::consts::PI * k as f64 / n as f64)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Cplx {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by `i` without a full complex multiply (the radix-4
    /// block's "free" rotation).
    pub fn mul_i(self) -> Self {
        Cplx {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplication by `−i`.
    pub fn mul_neg_i(self) -> Self {
        Cplx {
            re: self.im,
            im: -self.re,
        }
    }
}

impl Add for Cplx {
    type Output = Cplx;
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Cplx {
    fn add_assign(&mut self, rhs: Cplx) {
        *self = *self + rhs;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Cplx {
    fn sub_assign(&mut self, rhs: Cplx) {
        *self = *self - rhs;
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Cplx {
    fn mul_assign(&mut self, rhs: Cplx) {
        *self = *self * rhs;
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    fn neg(self) -> Cplx {
        Cplx {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for Cplx {
    fn sum<I: Iterator<Item = Cplx>>(iter: I) -> Cplx {
        iter.fold(Cplx::ZERO, Add::add)
    }
}

impl From<f64> for Cplx {
    fn from(re: f64) -> Self {
        Cplx { re, im: 0.0 }
    }
}

impl fmt::Display for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Largest element-wise absolute difference between two complex slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[Cplx], b: &[Cplx]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

/// Root-mean-square error between two complex slices.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rms_error(a: &[Cplx], b: &[Cplx]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty slices");
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (*x - *y).norm_sqr()).sum();
    (sum / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn field_axioms_spot_checks() {
        let a = Cplx::new(1.0, 2.0);
        let b = Cplx::new(-3.0, 0.5);
        assert_eq!(a + b, Cplx::new(-2.0, 2.5));
        assert_eq!(a - b, Cplx::new(4.0, 1.5));
        assert_eq!(a * Cplx::ONE, a);
        assert_eq!(a + Cplx::ZERO, a);
        assert_eq!(-a, Cplx::new(-1.0, -2.0));
        // (1+2i)(-3+0.5i) = -3 + 0.5i - 6i + i^2 = -4 - 5.5i
        assert_eq!(a * b, Cplx::new(-4.0, -5.5));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Cplx::I * Cplx::I, -Cplx::ONE);
        let z = Cplx::new(3.0, -4.0);
        assert_eq!(z.mul_i(), z * Cplx::I);
        assert_eq!(z.mul_neg_i(), z * -Cplx::I);
    }

    #[test]
    fn conj_and_norm() {
        let z = Cplx::new(3.0, 4.0);
        assert_eq!(z.conj(), Cplx::new(3.0, -4.0));
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        assert!(((z * z.conj()).re - 25.0).abs() < EPS);
    }

    #[test]
    fn twiddle_roots_of_unity() {
        let n = 8;
        let w = Cplx::twiddle(n, 1);
        let mut acc = Cplx::ONE;
        for _ in 0..n {
            acc *= w;
        }
        assert!((acc - Cplx::ONE).abs() < EPS, "W_8^8 = 1");
        assert!((Cplx::twiddle(4, 1) - (-Cplx::I)).abs() < EPS, "W_4 = -i");
    }

    #[test]
    fn assign_ops_and_sum() {
        let mut z = Cplx::ONE;
        z += Cplx::I;
        z -= Cplx::ONE;
        z *= Cplx::new(0.0, -1.0);
        assert_eq!(z, Cplx::ONE);
        let s: Cplx = [Cplx::ONE, Cplx::I, Cplx::new(1.0, 1.0)].into_iter().sum();
        assert_eq!(s, Cplx::new(2.0, 2.0));
        assert_eq!(Cplx::from(2.5), Cplx::new(2.5, 0.0));
    }

    #[test]
    fn error_metrics() {
        let a = [Cplx::ZERO, Cplx::ONE];
        let b = [Cplx::ZERO, Cplx::new(1.0, 1.0)];
        assert!((max_abs_diff(&a, &b) - 1.0).abs() < EPS);
        assert!((rms_error(&a, &b) - (0.5f64).sqrt()).abs() < EPS);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Cplx::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Cplx::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn diff_checks_lengths() {
        let _ = max_abs_diff(&[Cplx::ZERO], &[]);
    }
}
