//! Radix blocks: the butterfly units of Fig. 2(a).
//!
//! A radix block performs the twiddle-free part of a butterfly: sums and
//! differences (radix-2), or sums/differences with the "free" `±i`
//! rotations (radix-4). Twiddle multiplication is the TFC unit's job
//! ([`crate::TfcUnit`]).

use crate::Cplx;

/// The butterfly radix of a kernel stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Radix {
    /// 2-input butterflies; any power-of-two size.
    R2,
    /// 4-input butterflies (Fig. 2a); size must be a power of four.
    R4,
}

impl Radix {
    /// Inputs consumed per butterfly.
    pub fn arity(self) -> usize {
        match self {
            Radix::R2 => 2,
            Radix::R4 => 4,
        }
    }

    /// Complex adder/subtractor count of one block of this radix.
    ///
    /// Radix-2: one adder + one subtractor. Radix-4: two 2-point levels
    /// of four adders each (Fig. 2a's adder/subtractor tree).
    pub fn complex_adders(self) -> usize {
        match self {
            Radix::R2 => 2,
            Radix::R4 => 8,
        }
    }

    /// `true` if an FFT of `n` points can be built purely from stages of
    /// this radix.
    pub fn supports(self, n: usize) -> bool {
        if n < 2 || !n.is_power_of_two() {
            return false;
        }
        match self {
            Radix::R2 => true,
            Radix::R4 => n.trailing_zeros().is_multiple_of(2),
        }
    }
}

/// The radix-2 butterfly: `(a, b) → (a + b, a − b)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Radix2Block;

impl Radix2Block {
    /// Computes one butterfly.
    pub fn butterfly(a: Cplx, b: Cplx) -> (Cplx, Cplx) {
        (a + b, a - b)
    }
}

/// The radix-4 butterfly of Fig. 2(a): a 4-point DFT using only adders,
/// subtractors and `±i` rotations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Radix4Block;

impl Radix4Block {
    /// Computes one decimation-in-frequency radix-4 butterfly
    /// (a 4-point DFT of its inputs):
    ///
    /// ```text
    /// z0 = a + b + c + d
    /// z1 = (a − c) − i(b − d)
    /// z2 = (a − b + c − d)
    /// z3 = (a − c) + i(b − d)
    /// ```
    pub fn butterfly(a: Cplx, b: Cplx, c: Cplx, d: Cplx) -> [Cplx; 4] {
        Self::butterfly_dir(a, b, c, d, crate::FftDirection::Forward)
    }

    /// Radix-4 butterfly with a selectable rotation direction: the
    /// embedded `W_4` factor is `−i` forward and `+i` inverse.
    pub fn butterfly_dir(
        a: Cplx,
        b: Cplx,
        c: Cplx,
        d: Cplx,
        dir: crate::FftDirection,
    ) -> [Cplx; 4] {
        let t0 = a + c;
        let t1 = a - c;
        let t2 = b + d;
        let t3 = match dir {
            crate::FftDirection::Forward => (b - d).mul_neg_i(),
            crate::FftDirection::Inverse => (b - d).mul_i(),
        };
        [t0 + t2, t1 + t3, t0 - t2, t1 - t3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_abs_diff, naive_dft, FftDirection};
    use sim_util::{prop_assert, prop_check};

    #[test]
    fn radix_metadata() {
        assert_eq!(Radix::R2.arity(), 2);
        assert_eq!(Radix::R4.arity(), 4);
        assert_eq!(Radix::R2.complex_adders(), 2);
        assert_eq!(Radix::R4.complex_adders(), 8);
    }

    #[test]
    fn radix_support_matrix() {
        assert!(Radix::R2.supports(2));
        assert!(Radix::R2.supports(1024));
        assert!(!Radix::R2.supports(12));
        assert!(!Radix::R2.supports(0));
        assert!(Radix::R4.supports(4));
        assert!(Radix::R4.supports(256));
        assert!(!Radix::R4.supports(2));
        assert!(!Radix::R4.supports(8));
        assert!(!Radix::R4.supports(1));
    }

    #[test]
    fn radix2_butterfly_is_a_2point_dft() {
        let a = Cplx::new(1.0, 2.0);
        let b = Cplx::new(-0.5, 3.0);
        let (s, d) = Radix2Block::butterfly(a, b);
        let dft = naive_dft(&[a, b], FftDirection::Forward);
        assert!(max_abs_diff(&[s, d], &dft) < 1e-12);
    }

    #[test]
    fn radix4_butterfly_is_a_4point_dft() {
        prop_check!(|rng| {
            let x: Vec<Cplx> = rng.gen_complex_vec(4, -10.0..10.0, Cplx::new);
            let out = Radix4Block::butterfly(x[0], x[1], x[2], x[3]);
            let dft = naive_dft(&x, FftDirection::Forward);
            prop_assert!(max_abs_diff(&out, &dft) < 1e-10, "x = {x:?}");
        });
    }
}
