//! Data-path permutation (DPP) units: Fig. 2(b).
//!
//! A DPP unit moves data between butterfly stages: front multiplexers
//! steer incoming lanes into data buffers, each element waits a
//! stage-dependent number of cycles, and back multiplexers steer buffer
//! outputs onto the outgoing lanes. Functionally, one DPP realises a
//! fixed stride permutation of the streaming frame.
//!
//! This implementation wraps a double-buffered [`StreamingPermuter`] for
//! the data movement and reports both the buffering *it* uses and the
//! optimal delay-buffer sizing a hand-built DPP would use, so the FPGA
//! resource model can account for either design point.

use permute::{Permutation, StreamError, StreamingPermuter};

use crate::Cplx;

/// A streaming data-path permutation unit.
///
/// # Example
///
/// ```
/// use fft_kernel::{Cplx, DppUnit};
/// use permute::Permutation;
///
/// let mut dpp = DppUnit::new(Permutation::stride(8, 4).unwrap(), 4).unwrap();
/// let frame: Vec<Cplx> = (0..8).map(|i| Cplx::new(i as f64, 0.0)).collect();
/// let mut out = Vec::new();
/// for chunk in frame.chunks(4) {
///     out.extend(dpp.push(chunk).unwrap());
/// }
/// out.extend(dpp.flush());
/// assert_eq!(out.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct DppUnit {
    perm: Permutation,
    engine: StreamingPermuter<Cplx>,
}

impl DppUnit {
    /// Creates a DPP realising `perm` on a `width`-lane datapath.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::BadWidth`] unless `width` divides the frame
    /// size.
    pub fn new(perm: Permutation, width: usize) -> Result<Self, StreamError> {
        let engine = StreamingPermuter::new(perm.clone(), width)?;
        Ok(DppUnit { perm, engine })
    }

    /// The permutation this unit realises.
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Pushes one cycle of `width` elements, returning the elements that
    /// leave the unit this cycle.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::ChunkWidth`] on a wrong-width chunk.
    pub fn push(&mut self, chunk: &[Cplx]) -> Result<Vec<Cplx>, StreamError> {
        self.engine.push(chunk)
    }

    /// Drains buffered output after the stream ends.
    pub fn flush(&mut self) -> Vec<Cplx> {
        self.engine.flush()
    }

    /// Lanes per cycle.
    pub fn width(&self) -> usize {
        self.engine.width()
    }

    /// Frame size in elements.
    pub fn frame_len(&self) -> usize {
        self.engine.frame_len()
    }

    /// Cycles from first input to first output.
    pub fn latency_cycles(&self) -> u64 {
        self.engine.latency_cycles()
    }

    /// Buffer words this double-buffered implementation uses
    /// (two frames).
    pub fn buffer_words(&self) -> usize {
        self.engine.buffer_words()
    }

    /// Buffer words an optimally-sized delay-based DPP needs for the same
    /// permutation: the largest displacement between an element's input
    /// and output cycle, times the lane count — i.e. the in-flight window
    /// that must be held on chip.
    pub fn optimal_buffer_words(&self) -> usize {
        let p = self.width();
        let mut max_disp = 0usize;
        for i in 0..self.perm.len() {
            let in_cycle = i / p;
            let out_cycle = self.perm.dest(i) / p;
            // Elements that move to a later cycle must be buffered for
            // the difference; earlier-cycle destinations force the whole
            // window to shift, bounded by the same displacement.
            max_disp = max_disp.max(out_cycle.abs_diff(in_cycle));
        }
        (max_disp + 1) * p
    }

    /// Multiplexers in the unit: one front and one back mux per lane
    /// (Fig. 2b shows `2p` multiplexers for a `p`-lane DPP).
    pub fn mux_count(&self) -> usize {
        2 * self.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpp_permutes_frames() {
        let perm = Permutation::stride(8, 2).unwrap();
        let mut dpp = DppUnit::new(perm.clone(), 4).unwrap();
        let frame: Vec<Cplx> = (0..8).map(|i| Cplx::new(i as f64, 0.0)).collect();
        let mut out = Vec::new();
        for chunk in frame.chunks(4) {
            out.extend(dpp.push(chunk).unwrap());
        }
        out.extend(dpp.flush());
        let expected = perm.apply(&frame);
        assert_eq!(out.len(), expected.len());
        for (a, b) in out.iter().zip(&expected) {
            assert_eq!(a.re, b.re);
        }
    }

    #[test]
    fn resource_counters() {
        let dpp = DppUnit::new(Permutation::stride(16, 4).unwrap(), 4).unwrap();
        assert_eq!(dpp.width(), 4);
        assert_eq!(dpp.frame_len(), 16);
        assert_eq!(dpp.latency_cycles(), 4);
        assert_eq!(dpp.buffer_words(), 32);
        assert_eq!(dpp.mux_count(), 8);
        assert_eq!(dpp.permutation(), &Permutation::stride(16, 4).unwrap());
    }

    #[test]
    fn optimal_buffer_is_no_larger_than_double_buffer() {
        for (n, s, p) in [(16, 4, 4), (64, 8, 8), (64, 2, 4), (8, 8, 2)] {
            let dpp = DppUnit::new(Permutation::stride(n, s).unwrap(), p).unwrap();
            assert!(
                dpp.optimal_buffer_words() <= dpp.buffer_words(),
                "optimal sizing must not exceed double buffering (n={n}, s={s}, p={p})"
            );
        }
        // The identity permutation needs only the in-flight chunk.
        let id = DppUnit::new(Permutation::identity(16), 4).unwrap();
        assert_eq!(id.optimal_buffer_words(), 4);
    }
}
