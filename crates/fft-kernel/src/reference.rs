//! Reference transforms used to validate the structural kernel.
//!
//! [`naive_dft`] is the O(n²) definition — slow but obviously correct.
//! [`fft_in_place`] is a standard iterative radix-2 Cooley–Tukey FFT.
//! [`fft_2d`] applies the row–column algorithm with a full transpose,
//! the mathematical specification of what the simulated architecture
//! must compute.

use crate::{Cplx, KernelError};

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FftDirection {
    /// `X[k] = Σ x[j]·e^(−2πijk/n)`.
    Forward,
    /// `x[j] = (1/n)·Σ X[k]·e^(+2πijk/n)`.
    Inverse,
}

impl FftDirection {
    /// Sign of the exponent: −1 forward, +1 inverse.
    pub fn sign(self) -> f64 {
        match self {
            FftDirection::Forward => -1.0,
            FftDirection::Inverse => 1.0,
        }
    }
}

/// The O(n²) discrete Fourier transform, straight from the definition.
///
/// The inverse direction includes the `1/n` normalization, so
/// `naive_dft(naive_dft(x, Forward), Inverse) ≈ x`.
pub fn naive_dft(x: &[Cplx], dir: FftDirection) -> Vec<Cplx> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = dir.sign();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Cplx::ZERO;
        for (j, &v) in x.iter().enumerate() {
            let theta = sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
            acc += v * Cplx::expi(theta);
        }
        if dir == FftDirection::Inverse {
            acc = acc.scale(1.0 / n as f64);
        }
        out.push(acc);
    }
    out
}

/// Iterative radix-2 Cooley–Tukey FFT, in place, natural order in and out.
///
/// The inverse direction includes the `1/n` normalization.
///
/// # Errors
///
/// Returns [`KernelError::NotPowerOfTwo`] unless `x.len()` is a power of
/// two (length 0 is rejected too).
pub fn fft_in_place(x: &mut [Cplx], dir: FftDirection) -> Result<(), KernelError> {
    let n = x.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(KernelError::NotPowerOfTwo { n });
    }
    // Bit-reversal reorder (decimation in time). n = 1 has nothing to do.
    let bits = n.trailing_zeros();
    if bits > 0 {
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
            if i < j {
                x.swap(i, j);
            }
        }
    }
    let sign = dir.sign();
    let mut len = 2;
    while len <= n {
        let theta = sign * 2.0 * std::f64::consts::PI / len as f64;
        let w_len = Cplx::expi(theta);
        for block in x.chunks_mut(len) {
            let mut w = Cplx::ONE;
            let half = len / 2;
            for j in 0..half {
                let u = block[j];
                let v = block[j + half] * w;
                block[j] = u + v;
                block[j + half] = u - v;
                w *= w_len;
            }
        }
        len *= 2;
    }
    if dir == FftDirection::Inverse {
        let scale = 1.0 / n as f64;
        for v in x.iter_mut() {
            *v = v.scale(scale);
        }
    }
    Ok(())
}

/// Convenience wrapper around [`fft_in_place`] returning a new vector.
///
/// # Errors
///
/// Same as [`fft_in_place`].
pub fn fft(x: &[Cplx], dir: FftDirection) -> Result<Vec<Cplx>, KernelError> {
    let mut out = x.to_vec();
    fft_in_place(&mut out, dir)?;
    Ok(out)
}

/// Row–column 2D FFT of an `n × n` row-major matrix: 1D FFTs over every
/// row, transpose, 1D FFTs over every (former) column, transpose back.
///
/// This is the mathematical reference for the architecture simulated in
/// the `fft2d` crate.
///
/// # Errors
///
/// Returns [`KernelError::NotPowerOfTwo`] if `n` is not a power of two,
/// or [`KernelError::ShapeMismatch`] if `data.len() != n * n`.
pub fn fft_2d(data: &[Cplx], n: usize, dir: FftDirection) -> Result<Vec<Cplx>, KernelError> {
    if n == 0 || !n.is_power_of_two() {
        return Err(KernelError::NotPowerOfTwo { n });
    }
    if data.len() != n * n {
        return Err(KernelError::ShapeMismatch {
            expected: n * n,
            got: data.len(),
        });
    }
    let mut work = data.to_vec();
    // Phase 1: row-wise FFTs.
    for row in work.chunks_mut(n) {
        fft_in_place(row, dir)?;
    }
    // Transpose.
    let mut t = vec![Cplx::ZERO; n * n];
    for r in 0..n {
        for c in 0..n {
            t[c * n + r] = work[r * n + c];
        }
    }
    // Phase 2: column-wise FFTs (now rows of the transpose).
    for row in t.chunks_mut(n) {
        fft_in_place(row, dir)?;
    }
    // Transpose back to natural orientation.
    for r in 0..n {
        for c in 0..n {
            work[c * n + r] = t[r * n + c];
        }
    }
    Ok(work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;
    use sim_util::{prop_assert, prop_check, SimRng};

    fn random_signal(n: usize, seed: u64) -> Vec<Cplx> {
        SimRng::seed_from_u64(seed).gen_complex_vec(n, -1.0..1.0, Cplx::new)
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Cplx::ZERO; 8];
        x[0] = Cplx::ONE;
        for v in naive_dft(&x, FftDirection::Forward) {
            assert!((v - Cplx::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let x = vec![Cplx::ONE; 8];
        let y = naive_dft(&x, FftDirection::Forward);
        assert!((y[0] - Cplx::new(8.0, 0.0)).abs() < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        for k in 0..8 {
            let n = 1usize << k;
            let x = random_signal(n, 42 + k as u64);
            let fast = fft(&x, FftDirection::Forward).unwrap();
            let slow = naive_dft(&x, FftDirection::Forward);
            assert!(
                max_abs_diff(&fast, &slow) < 1e-9 * n as f64,
                "mismatch at n = {n}"
            );
        }
    }

    #[test]
    fn inverse_round_trips() {
        let x = random_signal(256, 7);
        let y = fft(&x, FftDirection::Forward).unwrap();
        let back = fft(&y, FftDirection::Inverse).unwrap();
        assert!(max_abs_diff(&x, &back) < 1e-10);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = vec![Cplx::ZERO; 12];
        assert!(matches!(
            fft_in_place(&mut x, FftDirection::Forward),
            Err(KernelError::NotPowerOfTwo { n: 12 })
        ));
        assert!(fft_in_place(&mut [], FftDirection::Forward).is_err());
    }

    #[test]
    fn fft_2d_impulse_is_flat() {
        let n = 8;
        let mut x = vec![Cplx::ZERO; n * n];
        x[0] = Cplx::ONE;
        let y = fft_2d(&x, n, FftDirection::Forward).unwrap();
        for v in y {
            assert!((v - Cplx::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_2d_separable_check() {
        // F2D(outer(u, v)) = outer(F(u), F(v)).
        let n = 16;
        let u = random_signal(n, 1);
        let v = random_signal(n, 2);
        let mut x = vec![Cplx::ZERO; n * n];
        for r in 0..n {
            for c in 0..n {
                x[r * n + c] = u[r] * v[c];
            }
        }
        let fu = fft(&u, FftDirection::Forward).unwrap();
        let fv = fft(&v, FftDirection::Forward).unwrap();
        let y = fft_2d(&x, n, FftDirection::Forward).unwrap();
        for r in 0..n {
            for c in 0..n {
                assert!((y[r * n + c] - fu[r] * fv[c]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn fft_2d_validates_shape() {
        assert!(matches!(
            fft_2d(&[Cplx::ZERO; 10], 4, FftDirection::Forward),
            Err(KernelError::ShapeMismatch {
                expected: 16,
                got: 10
            })
        ));
        assert!(fft_2d(&[Cplx::ZERO; 9], 3, FftDirection::Forward).is_err());
    }

    #[test]
    fn parseval_energy_is_preserved() {
        prop_check!(|rng| {
            let k = rng.gen_range(1usize..9);
            let n = 1usize << k;
            let x: Vec<Cplx> = rng.gen_complex_vec(n, -1.0..1.0, Cplx::new);
            let y = fft(&x, FftDirection::Forward).unwrap();
            let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
            let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
            prop_assert!(
                (ex - ey).abs() < 1e-8 * ex.max(1.0),
                "n = {n}: {ex} vs {ey}"
            );
        });
    }

    #[test]
    fn fft_is_linear() {
        prop_check!(|rng| {
            let n = 64;
            let a: Vec<Cplx> = rng.gen_complex_vec(n, -1.0..1.0, Cplx::new);
            let b: Vec<Cplx> = rng.gen_complex_vec(n, -1.0..1.0, Cplx::new);
            let sum: Vec<Cplx> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
            let fa = fft(&a, FftDirection::Forward).unwrap();
            let fb = fft(&b, FftDirection::Forward).unwrap();
            let fsum = fft(&sum, FftDirection::Forward).unwrap();
            let expect: Vec<Cplx> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
            prop_assert!(max_abs_diff(&fsum, &expect) < 1e-9);
        });
    }

    #[test]
    fn fft_2d_round_trips() {
        prop_check!(|rng| {
            let n = 8;
            let x: Vec<Cplx> = rng.gen_complex_vec(n * n, -1.0..1.0, Cplx::new);
            let y = fft_2d(&x, n, FftDirection::Forward).unwrap();
            let back = fft_2d(&y, n, FftDirection::Inverse).unwrap();
            prop_assert!(max_abs_diff(&x, &back) < 1e-9);
        });
    }
}
