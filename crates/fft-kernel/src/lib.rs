//! Reference FFTs and a structural, cycle-driven streaming 1D FFT kernel.
//!
//! The paper's 1D FFT kernel (Section 4.1) concatenates three component
//! types per butterfly stage, all modelled here:
//!
//! * **radix blocks** ([`Radix2Block`], [`Radix4Block`]) — complex
//!   adder/subtractor butterflies (Fig. 2a);
//! * **data-path permutation (DPP) units** ([`DppUnit`]) — multiplexers
//!   plus data buffers shuffling elements between stages (Fig. 2b);
//! * **twiddle-factor computation (TFC) units** ([`TfcUnit`]) — functional
//!   ROMs feeding complex multipliers (Fig. 2c).
//!
//! [`StreamingFft`] assembles them into a kernel that consumes and
//! produces `width` complex elements per cycle with a bounded fill
//! latency, computing numerically-correct FFTs (validated against
//! [`naive_dft`] and [`fft`]).
//!
//! # Example
//!
//! ```
//! use fft_kernel::{fft, max_abs_diff, Cplx, FftDirection, KernelConfig, StreamingFft};
//!
//! let input: Vec<Cplx> = (0..64).map(|i| Cplx::new((i % 7) as f64, 0.0)).collect();
//! let mut kernel = StreamingFft::new(KernelConfig::forward(64, 8))?;
//! let streamed = kernel.transform(&input)?;
//! let reference = fft(&input, FftDirection::Forward)?;
//! assert!(max_abs_diff(&streamed, &reference) < 1e-9);
//! # Ok::<(), fft_kernel::KernelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod dpp;
mod error;
mod kernel;
mod radix;
mod reference;
mod tfc;
mod twiddle;

pub use complex::{max_abs_diff, rms_error, Cplx};
pub use dpp::DppUnit;
pub use error::KernelError;
pub use kernel::{
    digit_reversal, KernelConfig, KernelResources, StreamingFft, ARITH_PIPELINE_CYCLES,
};
pub use radix::{Radix, Radix2Block, Radix4Block};
pub use reference::{fft, fft_2d, fft_in_place, naive_dft, FftDirection};
pub use tfc::TfcUnit;
pub use twiddle::TwiddleRom;
