//! Twiddle-factor computation (TFC) units: ROM + complex multiplier
//! (Fig. 2c).

use crate::{Cplx, FftDirection, Radix, TwiddleRom};

/// One stage's twiddle machinery: the ROM holding that stage's
/// coefficients and the complex multiplier applying them.
///
/// Real multiplications are counted ([`real_mults`](TfcUnit::real_mults))
/// because each complex multiplier costs four real multipliers and two
/// adders on the FPGA — the dominant DSP consumer of the kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct TfcUnit {
    rom: TwiddleRom,
    real_mults: u64,
}

impl TfcUnit {
    /// Builds the TFC unit for butterfly stage `stage` (0-based, outermost
    /// first) of an `n`-point decimation-in-frequency FFT of the given
    /// radix.
    ///
    /// For radix-2 stage `s` the block size is `n / 2^s` and the ROM holds
    /// `block/2` coefficients; for radix-4 the block size is `n / 4^s` and
    /// the ROM holds `3·block/4` coefficients (indexes `j`, `2j`, `3j`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not supported by `radix` or `stage` is out of
    /// range.
    pub fn for_stage(n: usize, stage: usize, radix: Radix, dir: FftDirection) -> Self {
        assert!(radix.supports(n), "{n} points unsupported by {radix:?}");
        let r = radix.arity();
        let stages = n.trailing_zeros() as usize / r.trailing_zeros() as usize;
        assert!(stage < stages, "stage {stage} out of range (have {stages})");
        let block = n / r.pow(stage as u32);
        let len = match radix {
            Radix::R2 => block / 2,
            Radix::R4 => 3 * block / 4,
        };
        TfcUnit {
            rom: TwiddleRom::new(block, len.max(1), dir == FftDirection::Inverse),
            real_mults: 0,
        }
    }

    /// The stage's block size (`W` order).
    pub fn block(&self) -> usize {
        self.rom.order()
    }

    /// Multiplies `x` by the ROM entry at index `t`, counting the real
    /// multiplications a hardware multiplier would perform. Index 0
    /// (`W^0 = 1`) is free, as hardware skips the multiply.
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the ROM depth.
    pub fn apply(&mut self, x: Cplx, t: usize) -> Cplx {
        if t == 0 {
            return x;
        }
        self.real_mults += 4;
        x * self.rom.lookup(t)
    }

    /// Real multiplications performed so far.
    pub fn real_mults(&self) -> u64 {
        self.real_mults
    }

    /// ROM footprint in bytes.
    pub fn rom_bytes(&self) -> usize {
        self.rom.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_rom_sizes_follow_block() {
        let t0 = TfcUnit::for_stage(16, 0, Radix::R2, FftDirection::Forward);
        assert_eq!(t0.block(), 16);
        assert_eq!(t0.rom_bytes(), 8 * 8); // 8 entries of 8 bytes
        let t1 = TfcUnit::for_stage(16, 1, Radix::R2, FftDirection::Forward);
        assert_eq!(t1.block(), 8);
        let q = TfcUnit::for_stage(16, 0, Radix::R4, FftDirection::Forward);
        assert_eq!(q.block(), 16);
        assert_eq!(q.rom_bytes(), 12 * 8);
    }

    #[test]
    fn apply_multiplies_and_counts() {
        let mut t = TfcUnit::for_stage(8, 0, Radix::R2, FftDirection::Forward);
        let x = Cplx::new(1.0, 1.0);
        assert_eq!(t.apply(x, 0), x);
        assert_eq!(t.real_mults(), 0, "W^0 is free");
        let y = t.apply(x, 2);
        assert!((y - x * Cplx::twiddle(8, 2)).abs() < 1e-15);
        assert_eq!(t.real_mults(), 4);
    }

    #[test]
    fn inverse_uses_conjugate_twiddles() {
        let mut f = TfcUnit::for_stage(8, 0, Radix::R2, FftDirection::Forward);
        let mut i = TfcUnit::for_stage(8, 0, Radix::R2, FftDirection::Inverse);
        let x = Cplx::new(0.3, -0.7);
        let prod = f.apply(x, 1) * i.apply(Cplx::ONE, 1);
        // W * conj(W) = 1, so f(x,1) * i(1,1) = x.
        assert!((prod - x).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stage_bounds_checked() {
        let _ = TfcUnit::for_stage(16, 4, Radix::R2, FftDirection::Forward);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn radix4_rejects_odd_log() {
        let _ = TfcUnit::for_stage(8, 0, Radix::R4, FftDirection::Forward);
    }
}
