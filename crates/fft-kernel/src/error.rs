//! Error type for kernel construction and streaming.

use std::fmt;

use crate::Radix;

/// Errors reported by the FFT kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// The transform size must be a power of two (non-zero).
    NotPowerOfTwo {
        /// The offending size.
        n: usize,
    },
    /// The size is incompatible with the chosen radix (e.g. 8 points
    /// with radix-4).
    UnsupportedSize {
        /// The offending size.
        n: usize,
        /// The radix that cannot build it.
        radix: Radix,
    },
    /// The stream width must be a non-zero power of two dividing `n`;
    /// also returned when a pushed chunk has the wrong length.
    BadWidth {
        /// Transform size.
        n: usize,
        /// Offending width.
        width: usize,
    },
    /// A buffer had the wrong number of elements.
    ShapeMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        got: usize,
    },
    /// `transform` was called on a kernel with frames still in flight.
    NotIdle {
        /// Elements unaccounted for.
        in_flight: usize,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NotPowerOfTwo { n } => {
                write!(f, "size {n} is not a non-zero power of two")
            }
            KernelError::UnsupportedSize { n, radix } => {
                write!(f, "size {n} cannot be built from {radix:?} stages")
            }
            KernelError::BadWidth { n, width } => {
                write!(f, "stream width {width} invalid for {n}-point kernel")
            }
            KernelError::ShapeMismatch { expected, got } => {
                write!(f, "expected {expected} elements, got {got}")
            }
            KernelError::NotIdle { in_flight } => {
                write!(f, "kernel not idle: {in_flight} elements in flight")
            }
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        assert!(KernelError::NotPowerOfTwo { n: 12 }
            .to_string()
            .contains("12"));
        assert!(KernelError::UnsupportedSize {
            n: 8,
            radix: Radix::R4
        }
        .to_string()
        .contains("R4"));
        assert!(KernelError::BadWidth { n: 16, width: 3 }
            .to_string()
            .contains("3"));
        assert!(KernelError::ShapeMismatch {
            expected: 4,
            got: 5
        }
        .to_string()
        .contains("5"));
        assert!(KernelError::NotIdle { in_flight: 2 }
            .to_string()
            .contains("2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KernelError>();
    }
}
