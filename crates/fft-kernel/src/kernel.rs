//! The structural streaming 1D FFT kernel.
//!
//! An N-point kernel is a pipeline of butterfly stages — each a frame
//! buffer feeding radix blocks ([`crate::Radix2Block`] /
//! [`crate::Radix4Block`]) and a TFC unit ([`crate::TfcUnit`]) — followed
//! by a final unscrambling permutation that restores natural order.
//! The kernel accepts `width` complex elements per cycle, sustains that
//! rate indefinitely across back-to-back frames, and has a fill latency
//! of `stages × N/width` cycles plus a small arithmetic pipeline depth.
//!
//! Stages use decimation in frequency, so inputs arrive in natural order
//! (exactly how the memory system streams them) and only the final output
//! needs digit reversal.

use permute::Permutation;

use crate::{Cplx, FftDirection, KernelError, Radix, Radix2Block, Radix4Block, TfcUnit};

/// Extra pipeline registers per butterfly stage (adder and multiplier
/// latency), counted into [`StreamingFft::latency_cycles`].
pub const ARITH_PIPELINE_CYCLES: u64 = 8;

/// Configuration of a [`StreamingFft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelConfig {
    /// Transform size (power of two; power of four for radix-4).
    pub n: usize,
    /// Complex elements consumed and produced per cycle.
    pub width: usize,
    /// Butterfly radix.
    pub radix: Radix,
    /// Transform direction.
    pub direction: FftDirection,
}

impl KernelConfig {
    /// A forward radix-4 kernel when possible, radix-2 otherwise, with
    /// the given stream width — the configuration the paper's processor
    /// uses.
    pub fn forward(n: usize, width: usize) -> Self {
        let radix = if Radix::R4.supports(n) {
            Radix::R4
        } else {
            Radix::R2
        };
        KernelConfig {
            n,
            width,
            radix,
            direction: FftDirection::Forward,
        }
    }

    /// Number of butterfly stages.
    pub fn stages(&self) -> usize {
        let r_bits = self.radix.arity().trailing_zeros() as usize;
        (self.n.trailing_zeros() as usize) / r_bits
    }

    /// Validates size/width/radix compatibility.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] when `n` is unsupported by the radix, or
    /// `width` is zero, not a power of two, or larger than `n`.
    pub fn validate(&self) -> Result<(), KernelError> {
        if !self.radix.supports(self.n) {
            return Err(KernelError::UnsupportedSize {
                n: self.n,
                radix: self.radix,
            });
        }
        if self.width == 0 || !self.width.is_power_of_two() || self.width > self.n {
            return Err(KernelError::BadWidth {
                n: self.n,
                width: self.width,
            });
        }
        Ok(())
    }
}

/// What one stage does to a completed frame.
#[derive(Debug, Clone)]
enum StageOp {
    /// Radix-2 DIF butterflies over blocks of `2 * half`.
    Radix2 { half: usize, tfc: TfcUnit },
    /// Radix-4 DIF butterflies over blocks of `4 * quarter`.
    Radix4 {
        quarter: usize,
        tfc: TfcUnit,
        dir: FftDirection,
    },
    /// Final digit-reversal unscrambling.
    Unscramble(Permutation),
}

impl StageOp {
    fn apply(&mut self, frame: &mut [Cplx]) {
        match self {
            StageOp::Radix2 { half, tfc } => {
                let block = 2 * *half;
                for chunk in frame.chunks_mut(block) {
                    for j in 0..*half {
                        let (u, v) = Radix2Block::butterfly(chunk[j], chunk[j + *half]);
                        chunk[j] = u;
                        chunk[j + *half] = tfc.apply(v, j);
                    }
                }
            }
            StageOp::Radix4 { quarter, tfc, dir } => {
                let q = *quarter;
                let block = 4 * q;
                for chunk in frame.chunks_mut(block) {
                    for j in 0..q {
                        let z = Radix4Block::butterfly_dir(
                            chunk[j],
                            chunk[j + q],
                            chunk[j + 2 * q],
                            chunk[j + 3 * q],
                            *dir,
                        );
                        chunk[j] = z[0];
                        chunk[j + q] = tfc.apply(z[1], j);
                        chunk[j + 2 * q] = tfc.apply(z[2], 2 * j);
                        chunk[j + 3 * q] = tfc.apply(z[3], 3 * j);
                    }
                }
            }
            StageOp::Unscramble(perm) => perm.apply_in_place(frame),
        }
    }
}

/// One pipeline stage: a double-buffered frame unit applying a
/// [`StageOp`] when its frame completes.
#[derive(Debug, Clone)]
struct FrameStage {
    op: StageOp,
    width: usize,
    fill: Vec<Cplx>,
    fill_count: usize,
    drain: Vec<Cplx>,
    drain_pos: usize,
}

impl FrameStage {
    fn new(op: StageOp, n: usize, width: usize) -> Self {
        FrameStage {
            op,
            width,
            fill: vec![Cplx::ZERO; n],
            fill_count: 0,
            drain: Vec::new(),
            drain_pos: 0,
        }
    }

    fn push(&mut self, chunk: &[Cplx]) -> Vec<Cplx> {
        debug_assert_eq!(chunk.len(), self.width);
        self.fill[self.fill_count..self.fill_count + chunk.len()].copy_from_slice(chunk);
        self.fill_count += chunk.len();
        if self.fill_count == self.fill.len() {
            debug_assert!(
                self.drain_pos == self.drain.len(),
                "previous frame drained before the next completes"
            );
            self.op.apply(&mut self.fill);
            std::mem::swap(&mut self.drain, &mut self.fill);
            self.fill_count = 0;
            self.drain_pos = 0;
            if self.fill.len() != self.drain.len() {
                self.fill = vec![Cplx::ZERO; self.drain.len()];
            }
        }
        self.pop()
    }

    fn pop(&mut self) -> Vec<Cplx> {
        if self.drain_pos >= self.drain.len() {
            return Vec::new();
        }
        let end = (self.drain_pos + self.width).min(self.drain.len());
        let out = self.drain[self.drain_pos..end].to_vec();
        self.drain_pos = end;
        out
    }

    /// Remaining buffered output (complete frames only).
    fn drain_rest(&mut self) -> Vec<Cplx> {
        let mut out = Vec::new();
        loop {
            let chunk = self.pop();
            if chunk.is_empty() {
                break;
            }
            out.extend(chunk);
        }
        out
    }
}

/// A cycle-driven streaming N-point FFT kernel.
///
/// # Example
///
/// ```
/// use fft_kernel::{fft, Cplx, FftDirection, KernelConfig, StreamingFft};
///
/// let cfg = KernelConfig::forward(16, 4);
/// let mut kernel = StreamingFft::new(cfg).unwrap();
/// let input: Vec<Cplx> = (0..16).map(|i| Cplx::new(i as f64, 0.0)).collect();
/// let out = kernel.transform(&input).unwrap();
/// let expected = fft(&input, FftDirection::Forward).unwrap();
/// assert!(fft_kernel::max_abs_diff(&out, &expected) < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingFft {
    cfg: KernelConfig,
    stages: Vec<FrameStage>,
    cycles: u64,
    scale: f64,
}

impl StreamingFft {
    /// Builds the stage pipeline for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] if the configuration is invalid.
    pub fn new(cfg: KernelConfig) -> Result<Self, KernelError> {
        cfg.validate()?;
        let n = cfg.n;
        let r = cfg.radix.arity();
        let mut stages = Vec::with_capacity(cfg.stages() + 1);
        for s in 0..cfg.stages() {
            let block = n / r.pow(s as u32);
            let tfc = TfcUnit::for_stage(n, s, cfg.radix, cfg.direction);
            let op = match cfg.radix {
                Radix::R2 => StageOp::Radix2 {
                    half: block / 2,
                    tfc,
                },
                Radix::R4 => StageOp::Radix4 {
                    quarter: block / 4,
                    tfc,
                    dir: cfg.direction,
                },
            };
            stages.push(FrameStage::new(op, n, cfg.width));
        }
        stages.push(FrameStage::new(
            StageOp::Unscramble(digit_reversal(n, r)?),
            n,
            cfg.width,
        ));
        let scale = match cfg.direction {
            FftDirection::Forward => 1.0,
            FftDirection::Inverse => 1.0 / n as f64,
        };
        Ok(StreamingFft {
            cfg,
            stages,
            cycles: 0,
            scale,
        })
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Cycles elapsed (one per [`push`](StreamingFft::push)).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Fill latency: cycles from the first input to the first output,
    /// including arithmetic pipeline depth.
    pub fn latency_cycles(&self) -> u64 {
        let frames = self.stages.len() as u64;
        frames * (self.cfg.n / self.cfg.width) as u64 + frames * ARITH_PIPELINE_CYCLES
    }

    /// Pushes one cycle of `width` elements; returns the `width` elements
    /// (scaled, natural order) leaving the kernel this cycle, or an empty
    /// vector while the pipeline fills.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadWidth`] if `chunk` has the wrong length.
    pub fn push(&mut self, chunk: &[Cplx]) -> Result<Vec<Cplx>, KernelError> {
        if chunk.len() != self.cfg.width {
            return Err(KernelError::BadWidth {
                n: self.cfg.n,
                width: chunk.len(),
            });
        }
        self.cycles += 1;
        let mut data = chunk.to_vec();
        for stage in &mut self.stages {
            if data.is_empty() {
                return Ok(data);
            }
            data = stage.push(&data);
        }
        self.apply_scale(&mut data);
        Ok(data)
    }

    /// Drains all in-flight frames after the input stream ends.
    pub fn flush(&mut self) -> Vec<Cplx> {
        let width = self.cfg.width;
        let mut carry: Vec<Cplx> = Vec::new();
        for i in 0..self.stages.len() {
            let mut emitted = Vec::new();
            for chunk in carry.chunks(width) {
                self.cycles += 1;
                emitted.extend(self.stages[i].push(chunk));
            }
            emitted.extend(self.stages[i].drain_rest());
            carry = emitted;
        }
        self.apply_scale(&mut carry);
        carry
    }

    /// One-shot convenience: streams a whole frame through a kernel that
    /// must be idle, returning the transform in natural order.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ShapeMismatch`] if `frame` is not exactly
    /// `n` elements, or [`KernelError::NotIdle`] if earlier pushes left
    /// data in flight.
    pub fn transform(&mut self, frame: &[Cplx]) -> Result<Vec<Cplx>, KernelError> {
        if frame.len() != self.cfg.n {
            return Err(KernelError::ShapeMismatch {
                expected: self.cfg.n,
                got: frame.len(),
            });
        }
        let mut out = Vec::with_capacity(self.cfg.n);
        for chunk in frame.chunks(self.cfg.width) {
            out.extend(self.push(chunk)?);
        }
        out.extend(self.flush());
        if out.len() != self.cfg.n {
            return Err(KernelError::NotIdle {
                in_flight: out.len().abs_diff(self.cfg.n),
            });
        }
        Ok(out)
    }

    /// Resource summary for the FPGA model.
    pub fn resources(&self) -> KernelResources {
        let p = self.cfg.width;
        let r = self.cfg.radix.arity();
        let stages = self.cfg.stages();
        let rom_bytes = self
            .stages
            .iter()
            .map(|s| match &s.op {
                StageOp::Radix2 { tfc, .. } | StageOp::Radix4 { tfc, .. } => tfc.rom_bytes(),
                StageOp::Unscramble(_) => 0,
            })
            .sum();
        KernelResources {
            stages,
            radix_blocks: stages * (p / r).max(1),
            complex_adders: stages * (p / r).max(1) * self.cfg.radix.complex_adders(),
            complex_multipliers: stages * (p - p / r).max(1),
            rom_bytes,
            // Every stage plus the unscrambler double-buffers one frame.
            buffer_words: (stages + 1) * 2 * self.cfg.n,
        }
    }

    /// Total real multiplications performed so far by all TFC units.
    pub fn real_mults(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match &s.op {
                StageOp::Radix2 { tfc, .. } | StageOp::Radix4 { tfc, .. } => tfc.real_mults(),
                StageOp::Unscramble(_) => 0,
            })
            .sum()
    }

    fn apply_scale(&self, data: &mut [Cplx]) {
        if self.scale != 1.0 {
            for v in data {
                *v = v.scale(self.scale);
            }
        }
    }
}

/// Hardware inventory of one kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// Butterfly stages.
    pub stages: usize,
    /// Radix blocks across all stages.
    pub radix_blocks: usize,
    /// Complex adders/subtractors.
    pub complex_adders: usize,
    /// Complex multipliers (each = 4 real multipliers + 2 adders).
    pub complex_multipliers: usize,
    /// Twiddle ROM bytes.
    pub rom_bytes: usize,
    /// Data buffer words (64-bit complex words).
    pub buffer_words: usize,
}

/// Base-`r` digit-reversal permutation on `n` points (`r` a power of two
/// dividing the digit structure of `n`). For `r = 2` this is bit
/// reversal.
///
/// # Errors
///
/// Returns [`KernelError::UnsupportedSize`] unless `n` is a power of `r`.
pub fn digit_reversal(n: usize, r: usize) -> Result<Permutation, KernelError> {
    if n == 0 || r < 2 || !n.is_power_of_two() || !r.is_power_of_two() {
        return Err(KernelError::NotPowerOfTwo { n });
    }
    let r_bits = r.trailing_zeros() as usize;
    let n_bits = n.trailing_zeros() as usize;
    if !n_bits.is_multiple_of(r_bits) {
        return Err(KernelError::UnsupportedSize {
            n,
            radix: if r == 4 { Radix::R4 } else { Radix::R2 },
        });
    }
    let digits = n_bits / r_bits;
    let mask = r - 1;
    let map = (0..n)
        .map(|i| {
            let mut x = i;
            let mut out = 0usize;
            for _ in 0..digits {
                out = (out << r_bits) | (x & mask);
                x >>= r_bits;
            }
            out
        })
        .collect();
    // simlint::allow(P101): digit reversal is an involution on 0..n — always a bijection
    Ok(Permutation::from_map(map).expect("digit reversal is a bijection"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fft, max_abs_diff, naive_dft};
    use sim_util::{prop_assert, prop_check, SimRng};

    fn random_signal(n: usize, seed: u64) -> Vec<Cplx> {
        SimRng::seed_from_u64(seed).gen_complex_vec(n, -1.0..1.0, Cplx::new)
    }

    #[test]
    fn digit_reversal_base2_is_bit_reversal() {
        let d = digit_reversal(16, 2).unwrap();
        let b = Permutation::bit_reversal(16).unwrap();
        assert_eq!(d, b);
    }

    #[test]
    fn digit_reversal_base4_involutes() {
        let d = digit_reversal(64, 4).unwrap();
        assert!(d.then(&d).is_identity());
        assert!(digit_reversal(32, 4).is_err());
        assert!(digit_reversal(0, 2).is_err());
        assert!(digit_reversal(16, 3).is_err());
    }

    #[test]
    fn kernel_matches_naive_dft_small() {
        for n in [2usize, 4, 8, 16, 32] {
            let cfg = KernelConfig {
                n,
                width: 2.min(n),
                radix: Radix::R2,
                direction: FftDirection::Forward,
            };
            let mut k = StreamingFft::new(cfg).unwrap();
            let x = random_signal(n, n as u64);
            let out = k.transform(&x).unwrap();
            let expect = naive_dft(&x, FftDirection::Forward);
            assert!(max_abs_diff(&out, &expect) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn radix4_matches_radix2() {
        for n in [4usize, 16, 64, 256] {
            let x = random_signal(n, 99);
            let mut k2 = StreamingFft::new(KernelConfig {
                n,
                width: 4,
                radix: Radix::R2,
                direction: FftDirection::Forward,
            })
            .unwrap();
            let mut k4 = StreamingFft::new(KernelConfig {
                n,
                width: 4,
                radix: Radix::R4,
                direction: FftDirection::Forward,
            })
            .unwrap();
            let a = k2.transform(&x).unwrap();
            let b = k4.transform(&x).unwrap();
            assert!(max_abs_diff(&a, &b) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn kernel_matches_reference_large() {
        let n = 2048;
        let cfg = KernelConfig::forward(n, 8);
        assert_eq!(cfg.radix, Radix::R2, "2048 is not a power of 4");
        let mut k = StreamingFft::new(cfg).unwrap();
        let x = random_signal(n, 5);
        let out = k.transform(&x).unwrap();
        let expect = fft(&x, FftDirection::Forward).unwrap();
        assert!(max_abs_diff(&out, &expect) < 1e-8);
    }

    #[test]
    fn inverse_kernel_round_trips() {
        let n = 256;
        let x = random_signal(n, 11);
        let mut fwd = StreamingFft::new(KernelConfig::forward(n, 8)).unwrap();
        let y = fwd.transform(&x).unwrap();
        let mut inv = StreamingFft::new(KernelConfig {
            direction: FftDirection::Inverse,
            ..KernelConfig::forward(n, 8)
        })
        .unwrap();
        let back = inv.transform(&y).unwrap();
        assert!(max_abs_diff(&x, &back) < 1e-9);
    }

    #[test]
    fn back_to_back_frames_stream_correctly() {
        let n = 64;
        let frames = 4;
        let cfg = KernelConfig::forward(n, 8);
        let mut k = StreamingFft::new(cfg).unwrap();
        let data = random_signal(n * frames, 21);
        let mut out = Vec::new();
        for chunk in data.chunks(8) {
            out.extend(k.push(chunk).unwrap());
        }
        out.extend(k.flush());
        assert_eq!(out.len(), n * frames);
        for f in 0..frames {
            let expect = fft(&data[f * n..(f + 1) * n], FftDirection::Forward).unwrap();
            assert!(
                max_abs_diff(&out[f * n..(f + 1) * n], &expect) < 1e-9,
                "frame {f}"
            );
        }
    }

    #[test]
    fn latency_and_cycle_accounting() {
        let cfg = KernelConfig::forward(64, 8);
        let mut k = StreamingFft::new(cfg).unwrap();
        // Radix-4: 3 stages + unscramble = 4 frames of 8 cycles each.
        assert_eq!(k.latency_cycles(), 4 * 8 + 4 * ARITH_PIPELINE_CYCLES);
        let x = random_signal(64, 1);
        k.transform(&x).unwrap();
        assert!(k.cycles() >= 8, "at least one frame of pushes");
        assert!(k.real_mults() > 0);
    }

    #[test]
    fn resources_scale_with_stages() {
        let k8 = StreamingFft::new(KernelConfig::forward(256, 8)).unwrap();
        let r = k8.resources();
        assert_eq!(r.stages, 4); // 256 = 4^4
        assert_eq!(r.radix_blocks, 4 * 2); // width 8 / arity 4 = 2 per stage
        assert!(r.complex_adders > 0);
        assert!(r.complex_multipliers > 0);
        assert!(r.rom_bytes > 0);
        assert_eq!(r.buffer_words, 5 * 2 * 256);
    }

    #[test]
    fn config_validation() {
        assert!(StreamingFft::new(KernelConfig {
            n: 12,
            width: 4,
            radix: Radix::R2,
            direction: FftDirection::Forward
        })
        .is_err());
        assert!(StreamingFft::new(KernelConfig {
            n: 16,
            width: 3,
            radix: Radix::R2,
            direction: FftDirection::Forward
        })
        .is_err());
        assert!(StreamingFft::new(KernelConfig {
            n: 16,
            width: 32,
            radix: Radix::R2,
            direction: FftDirection::Forward
        })
        .is_err());
        let mut k = StreamingFft::new(KernelConfig::forward(16, 4)).unwrap();
        assert!(k.push(&[Cplx::ZERO; 3]).is_err());
        assert!(k.transform(&[Cplx::ZERO; 5]).is_err());
    }

    #[test]
    fn kernel_equals_reference() {
        prop_check!(|rng| {
            let kexp = rng.gen_range(1usize..9);
            let wexp = rng.gen_range(0usize..4);
            let n = 1usize << kexp;
            let width = 1usize << wexp.min(kexp);
            let cfg = KernelConfig::forward(n, width);
            let mut k = StreamingFft::new(cfg).unwrap();
            let x: Vec<Cplx> = rng.gen_complex_vec(n, -1.0..1.0, Cplx::new);
            let out = k.transform(&x).unwrap();
            let expect = fft(&x, FftDirection::Forward).unwrap();
            prop_assert!(
                max_abs_diff(&out, &expect) < 1e-8,
                "n = {n}, width = {width}"
            );
        });
    }
}
