//! Diagonally-skewed multi-bank buffers for conflict-free transposition.
//!
//! An FPGA block RAM has a small fixed number of ports, so a `p`-wide
//! datapath needs `p` independent banks. Storing element `(r, c)` of a
//! tile in bank `(r + c) mod p` lets the datapath write a *row* per cycle
//! and read a *column* per cycle without ever addressing the same bank
//! twice in one cycle — the classic skewing trick behind the paper's
//! on-chip local transposition.

use std::fmt;

/// A `p`-bank skewed buffer holding one `p × p` tile.
///
/// # Example
///
/// ```
/// use permute::SkewedTile;
///
/// let mut tile = SkewedTile::new(4);
/// for r in 0..4 {
///     let row: Vec<u32> = (0..4).map(|c| (10 * r + c) as u32).collect();
///     tile.write_row(r, &row).unwrap();
/// }
/// // Columns come back conflict-free.
/// assert_eq!(tile.read_col(2).unwrap(), vec![2, 12, 22, 32]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewedTile<T> {
    p: usize,
    /// `banks[b][a]`: bank `b`, address `a`.
    banks: Vec<Vec<Option<T>>>,
}

impl<T: Clone> SkewedTile<T> {
    /// An empty `p × p` tile buffer.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "tile width must be non-zero");
        SkewedTile {
            p,
            banks: vec![vec![None; p]; p],
        }
    }

    /// Tile dimension (also the number of banks).
    pub fn width(&self) -> usize {
        self.p
    }

    /// Bank that stores element `(r, c)`.
    pub fn bank_of(&self, r: usize, c: usize) -> usize {
        (r + c) % self.p
    }

    /// Writes row `r` in one cycle. Each element lands in a distinct bank.
    ///
    /// # Errors
    ///
    /// Returns [`SkewError`] if `r` is out of range or `row` has the
    /// wrong width.
    pub fn write_row(&mut self, r: usize, row: &[T]) -> Result<(), SkewError> {
        self.check(r, row.len())?;
        for (c, v) in row.iter().enumerate() {
            let b = self.bank_of(r, c);
            // Within a bank, a row write uses address r.
            self.banks[b][r] = Some(v.clone());
        }
        Ok(())
    }

    /// Reads column `c` in one cycle. Each element comes from a distinct
    /// bank.
    ///
    /// # Errors
    ///
    /// Returns [`SkewError`] if `c` is out of range or the column was
    /// never fully written.
    pub fn read_col(&self, c: usize) -> Result<Vec<T>, SkewError> {
        self.check(c, self.p)?;
        (0..self.p)
            .map(|r| {
                self.banks[self.bank_of(r, c)][r]
                    .clone()
                    .ok_or(SkewError::Unwritten { r, c })
            })
            .collect()
    }

    /// Reads row `r` back (also conflict-free).
    ///
    /// # Errors
    ///
    /// Returns [`SkewError`] if `r` is out of range or the row was never
    /// fully written.
    pub fn read_row(&self, r: usize) -> Result<Vec<T>, SkewError> {
        self.check(r, self.p)?;
        (0..self.p)
            .map(|c| {
                self.banks[self.bank_of(r, c)][r]
                    .clone()
                    .ok_or(SkewError::Unwritten { r, c })
            })
            .collect()
    }

    /// The set of banks a row or column access touches in one cycle.
    /// Always a permutation of `0..p` — asserted in tests and relied on
    /// by the conflict-freedom claim.
    pub fn banks_for_row(&self, r: usize) -> Vec<usize> {
        (0..self.p).map(|c| self.bank_of(r, c)).collect()
    }

    /// See [`banks_for_row`](SkewedTile::banks_for_row).
    pub fn banks_for_col(&self, c: usize) -> Vec<usize> {
        (0..self.p).map(|r| self.bank_of(r, c)).collect()
    }

    fn check(&self, idx: usize, width: usize) -> Result<(), SkewError> {
        if idx >= self.p {
            return Err(SkewError::OutOfRange { idx, p: self.p });
        }
        if width != self.p {
            return Err(SkewError::WidthMismatch {
                got: width,
                p: self.p,
            });
        }
        Ok(())
    }
}

/// Errors from [`SkewedTile`] accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SkewError {
    /// Row/column index ≥ `p`.
    OutOfRange {
        /// The offending index.
        idx: usize,
        /// The tile dimension.
        p: usize,
    },
    /// A vector of the wrong width was supplied.
    WidthMismatch {
        /// Supplied width.
        got: usize,
        /// Required width.
        p: usize,
    },
    /// Element `(r, c)` was read before being written.
    Unwritten {
        /// Row of the missing element.
        r: usize,
        /// Column of the missing element.
        c: usize,
    },
}

impl fmt::Display for SkewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkewError::OutOfRange { idx, p } => write!(f, "index {idx} out of range for {p}"),
            SkewError::WidthMismatch { got, p } => {
                write!(f, "vector width {got} does not match tile width {p}")
            }
            SkewError::Unwritten { r, c } => write!(f, "element ({r}, {c}) was never written"),
        }
    }
}

impl std::error::Error for SkewError {}

/// Transposes a stream of `p × p` row-major tiles using a [`SkewedTile`]:
/// rows in, columns out, one vector per cycle, `p` cycles of fill latency.
///
/// This is the local transposition engine the optimized architecture uses
/// to reshape row-FFT results into the block dynamic layout.
#[derive(Debug, Clone)]
pub struct TileTransposer<T> {
    tile: SkewedTile<T>,
    rows_in: usize,
    /// Total vectors (rows) accepted, for cycle accounting.
    cycles: u64,
}

impl<T: Clone> TileTransposer<T> {
    /// A transposer for `p × p` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn new(p: usize) -> Self {
        TileTransposer {
            tile: SkewedTile::new(p),
            rows_in: 0,
            cycles: 0,
        }
    }

    /// Feeds one row; when the tile is full, returns all `p` columns
    /// (the transposed tile, row-major).
    ///
    /// # Errors
    ///
    /// Returns [`SkewError::WidthMismatch`] for wrong-width rows.
    pub fn push_row(&mut self, row: &[T]) -> Result<Option<Vec<Vec<T>>>, SkewError> {
        self.tile.write_row(self.rows_in, row)?;
        self.rows_in += 1;
        self.cycles += 1;
        if self.rows_in == self.tile.width() {
            self.rows_in = 0;
            let p = self.tile.width();
            let out = (0..p)
                .map(|c| self.tile.read_col(c))
                .collect::<Result<_, _>>()?;
            self.cycles += p as u64; // drain cycles
            Ok(Some(out))
        } else {
            Ok(None)
        }
    }

    /// Cycles consumed so far (fill + drain).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_util::{prop_assert_eq, prop_check};

    #[test]
    fn write_rows_read_cols_transposes() {
        let mut t = SkewedTile::new(3);
        for r in 0..3 {
            t.write_row(r, &[(r, 0), (r, 1), (r, 2)]).unwrap();
        }
        for c in 0..3 {
            assert_eq!(t.read_col(c).unwrap(), vec![(0, c), (1, c), (2, c)]);
        }
        for r in 0..3 {
            assert_eq!(t.read_row(r).unwrap(), vec![(r, 0), (r, 1), (r, 2)]);
        }
    }

    #[test]
    fn errors_are_reported() {
        let mut t = SkewedTile::<u8>::new(2);
        assert_eq!(
            t.write_row(5, &[1, 2]).unwrap_err(),
            SkewError::OutOfRange { idx: 5, p: 2 }
        );
        assert_eq!(
            t.write_row(0, &[1]).unwrap_err(),
            SkewError::WidthMismatch { got: 1, p: 2 }
        );
        assert_eq!(
            t.read_col(0).unwrap_err(),
            SkewError::Unwritten { r: 0, c: 0 }
        );
        assert!(t
            .read_col(0)
            .unwrap_err()
            .to_string()
            .contains("never written"));
    }

    #[test]
    fn transposer_emits_full_tiles() {
        let mut tr = TileTransposer::new(2);
        assert!(tr.push_row(&[1, 2]).unwrap().is_none());
        let out = tr.push_row(&[3, 4]).unwrap().unwrap();
        assert_eq!(out, vec![vec![1, 3], vec![2, 4]]);
        // Fill (2) + drain (2) cycles.
        assert_eq!(tr.cycles(), 4);
        // Reusable for the next tile.
        assert!(tr.push_row(&[5, 6]).unwrap().is_none());
        let out2 = tr.push_row(&[7, 8]).unwrap().unwrap();
        assert_eq!(out2, vec![vec![5, 7], vec![6, 8]]);
    }

    #[test]
    fn accesses_are_conflict_free() {
        prop_check!(|rng| {
            let p = rng.gen_range(1usize..33);
            let t = SkewedTile::<u8>::new(p);
            for i in 0..p {
                let mut row = t.banks_for_row(i);
                row.sort_unstable();
                prop_assert_eq!(row, (0..p).collect::<Vec<_>>(), "p = {}, row {}", p, i);
                let mut col = t.banks_for_col(i);
                col.sort_unstable();
                prop_assert_eq!(col, (0..p).collect::<Vec<_>>(), "p = {}, col {}", p, i);
            }
        });
    }

    #[test]
    fn transpose_matches_reference() {
        prop_check!(|rng| {
            let p = rng.gen_range(1usize..9);
            let data: Vec<Vec<u32>> = (0..p)
                .map(|_| (0..p).map(|_| rng.next_u32()).collect())
                .collect();
            let mut tr = TileTransposer::new(p);
            let mut out = None;
            for row in &data {
                out = tr.push_row(row).unwrap();
            }
            let out = out.expect("tile complete after p rows");
            for (r, row) in out.iter().enumerate() {
                for (c, v) in row.iter().enumerate() {
                    prop_assert_eq!(*v, data[c][r], "p = {}, ({}, {})", p, r, c);
                }
            }
        });
    }
}
