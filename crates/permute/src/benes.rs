//! A Beneš rearrangeable permutation network.
//!
//! A single `p × p` crossbar costs O(p²) multiplexer area; the paper's
//! permutation-network lineage (the authors' bitonic-network FPGA work)
//! uses multistage networks instead. A Beneš network on `p = 2^k` ports
//! realises *any* permutation with `2k − 1` stages of `p/2` two-input
//! switches — O(p log p) area — at the cost of a routing computation,
//! performed here by the classic looping algorithm.
//!
//! [`BenesNetwork::route`] returns the switch settings for a requested
//! permutation; [`BenesNetwork::apply`] pushes data through the switched
//! datapath, which is how the tests prove the routing correct.

use crate::{Permutation, PermutationError};

/// Switch settings for one Beneš network instance: `settings[stage][i]`
/// tells switch `i` of `stage` whether to cross its two inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenesProgram {
    ports: usize,
    /// `settings[stage][switch]`: `true` = crossed, `false` = straight.
    settings: Vec<Vec<bool>>,
}

impl BenesProgram {
    /// Number of data ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of switching stages (`2·log2(p) − 1`).
    pub fn stages(&self) -> usize {
        self.settings.len()
    }

    /// Total 2×2 switches in the program.
    pub fn switch_count(&self) -> usize {
        self.settings.iter().map(Vec::len).sum()
    }

    /// How many switches are set to *cross* (a proxy for switching
    /// activity / dynamic energy).
    pub fn crossed_count(&self) -> usize {
        self.settings
            .iter()
            .flat_map(|s| s.iter())
            .filter(|&&c| c)
            .count()
    }
}

/// A Beneš network over `p = 2^k` ports.
///
/// # Example
///
/// ```
/// use permute::{BenesNetwork, Permutation};
///
/// let net = BenesNetwork::new(8).unwrap();
/// let perm = Permutation::bit_reversal(8).unwrap();
/// let program = net.route(&perm).unwrap();
/// let out = net.apply(&program, &[0, 1, 2, 3, 4, 5, 6, 7]);
/// assert_eq!(out, perm.apply(&[0, 1, 2, 3, 4, 5, 6, 7]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenesNetwork {
    ports: usize,
}

impl BenesNetwork {
    /// Creates a network with `ports` ports.
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::NotPowerOfTwo`] unless `ports` is a
    /// power of two ≥ 2.
    pub fn new(ports: usize) -> Result<Self, PermutationError> {
        if ports < 2 || !ports.is_power_of_two() {
            return Err(PermutationError::NotPowerOfTwo { n: ports });
        }
        Ok(BenesNetwork { ports })
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Switching stages of this network.
    pub fn stages(&self) -> usize {
        2 * (self.ports.trailing_zeros() as usize) - 1
    }

    /// Computes switch settings realising `perm` (destination map: the
    /// value entering port `i` leaves on port `perm.dest(i)`).
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::NotBijective`] if `perm` has the
    /// wrong size.
    pub fn route(&self, perm: &Permutation) -> Result<BenesProgram, PermutationError> {
        if perm.len() != self.ports {
            return Err(PermutationError::NotBijective {
                len: perm.len(),
                value: self.ports,
            });
        }
        let mut settings = Vec::new();
        route_rec(perm, &mut settings);
        // route_rec produces stages outer-first; assemble recursive
        // sub-network programs into flat stage-major form.
        Ok(BenesProgram {
            ports: self.ports,
            settings,
        })
    }

    /// Pushes one cycle of data through a routed program.
    ///
    /// # Panics
    ///
    /// Panics if the program or the input width does not match the
    /// network.
    pub fn apply<T: Clone>(&self, program: &BenesProgram, inputs: &[T]) -> Vec<T> {
        assert_eq!(program.ports, self.ports, "program/network mismatch");
        assert_eq!(inputs.len(), self.ports, "input width mismatch");
        let mut data: Vec<T> = inputs.to_vec();
        let k = self.ports.trailing_zeros() as usize;
        // Stage s pairs ports that differ in one bit; the outer stages
        // pair adjacent ports on bit positions k-1, k-2, …, 0, …, k-1
        // following the recursive butterfly structure.
        for (stage, bits) in stage_bits(k).into_iter().enumerate() {
            let stride = 1usize << bits;
            let switches = &program.settings[stage];
            let mut si = 0usize;
            let mut visited = vec![false; self.ports];
            for i in 0..self.ports {
                if visited[i] {
                    continue;
                }
                let j = i ^ stride;
                visited[i] = true;
                visited[j] = true;
                if switches[si] {
                    data.swap(i, j);
                }
                si += 1;
            }
        }
        data
    }
}

/// Bit distances of each stage's switch pairing: k−1, k−2, …, 1, 0,
/// 1, …, k−1 (the recursive Beneš butterfly).
fn stage_bits(k: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..k).rev().collect();
    v.extend(1..k);
    v
}

/// Recursive looping router. Decomposes `perm` on `n` ports into an
/// outer stage pair plus two half-size sub-permutations, emitting stage
/// settings in network order.
fn route_rec(perm: &Permutation, settings: &mut Vec<Vec<bool>>) {
    let n = perm.len();
    let k = n.trailing_zeros() as usize;
    // Allocate the flat stage vector on the first call.
    if settings.is_empty() {
        settings.resize(2 * k - 1, Vec::new());
    }
    fill(perm, 0, 0, settings);
}

/// Routes `perm` into stages `[depth, 2k-1-depth)` of `settings`, where
/// the sub-network's ports are offset within each stage by `offset`
/// switches.
fn fill(perm: &Permutation, depth: usize, offset: usize, settings: &mut Vec<Vec<bool>>) {
    let n = perm.len();
    if n == 2 {
        // A single switch: cross iff the permutation swaps.
        let mid = settings.len() / 2;
        set_switch(&mut settings[mid], offset, perm.dest(0) == 1);
        return;
    }
    let half = n / 2;
    // Looping algorithm: 2-color the constraint graph so that the two
    // elements of every input pair and every output pair land in
    // different halves.
    let inv = perm.inverse();
    let mut in_color: Vec<Option<bool>> = vec![None; n];
    for start in 0..n {
        if in_color[start].is_some() {
            continue;
        }
        // Follow the alternating chain: fix `start` to the top half,
        // then its input partner goes bottom, that partner's output
        // partner's input pair propagates, and so on around the loop.
        let mut i = start;
        let mut color = false;
        loop {
            in_color[i] = Some(color);
            let partner_in = i ^ (n - half); // i ± half: same input switch
            if in_color[partner_in].is_some() {
                break;
            }
            in_color[partner_in] = Some(!color);
            // The output position of partner_in shares an output switch
            // with another output; its source must take the remaining
            // color.
            let out = perm.dest(partner_in);
            let partner_out = out ^ (n - half);
            let next = inv.dest(partner_out);
            if in_color[next].is_some() {
                break;
            }
            color = !in_color[partner_in].unwrap();
            i = next;
            in_color[i] = None; // will be set at loop top
        }
    }

    // Outer input stage: input pair (i, i+half) goes through switch i;
    // crossed iff the top input (i) is colored to the bottom half.
    let first = depth;
    let last = settings.len() - 1 - depth;
    let mut top_perm = vec![0usize; half];
    let mut bot_perm = vec![0usize; half];
    for i in 0..half {
        let top_colored_bottom = in_color[i] == Some(true);
        set_switch(&mut settings[first], offset + i, top_colored_bottom);
        // After the input stage, sub-network port i of the chosen half
        // carries element (i or i+half).
        let (to_top, to_bot) = if top_colored_bottom {
            (i + half, i)
        } else {
            (i, i + half)
        };
        // Output stage: element x must leave the whole network at
        // perm.dest(x); it exits the sub-network at dest mod half and
        // the output switch either keeps or crosses it.
        let dt = perm.dest(to_top);
        let db = perm.dest(to_bot);
        top_perm[i] = dt % half;
        bot_perm[i] = db % half;
        // Output switch j combines sub-outputs j (top) and j (bottom);
        // crossed iff the top sub-network's element is bound for the
        // bottom half.
        set_switch(&mut settings[last], offset + dt % half, dt >= half);
        if last != first {
            set_switch(&mut settings[last], offset + db % half, db < half);
        }
    }

    let top = Permutation::from_map(top_perm).expect("looping keeps halves bijective");
    let bot = Permutation::from_map(bot_perm).expect("looping keeps halves bijective");
    fill(&top, depth + 1, offset, settings);
    fill(&bot, depth + 1, offset + half / 2, settings);
}

fn set_switch(stage: &mut Vec<bool>, idx: usize, crossed: bool) {
    if stage.len() <= idx {
        stage.resize(idx + 1, false);
    }
    stage[idx] = crossed;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_util::{prop_assert_eq, prop_check};

    #[test]
    fn constructor_validates() {
        assert!(BenesNetwork::new(0).is_err());
        assert!(BenesNetwork::new(3).is_err());
        let net = BenesNetwork::new(8).unwrap();
        assert_eq!(net.ports(), 8);
        assert_eq!(net.stages(), 5);
    }

    #[test]
    fn identity_routes_straight() {
        let net = BenesNetwork::new(4).unwrap();
        let prog = net.route(&Permutation::identity(4)).unwrap();
        let out = net.apply(&prog, &[10, 11, 12, 13]);
        assert_eq!(out, vec![10, 11, 12, 13]);
    }

    #[test]
    fn route_rejects_size_mismatch() {
        let net = BenesNetwork::new(4).unwrap();
        assert!(net.route(&Permutation::identity(8)).is_err());
    }

    #[test]
    fn switch_counts_are_p_log_p() {
        let net = BenesNetwork::new(16).unwrap();
        let prog = net.route(&Permutation::bit_reversal(16).unwrap()).unwrap();
        // 7 stages × 8 switches.
        assert_eq!(prog.stages(), 7);
        assert_eq!(prog.switch_count(), 7 * 8);
        assert!(prog.crossed_count() <= prog.switch_count());
        assert_eq!(prog.ports(), 16);
    }

    #[test]
    fn routes_arbitrary_permutations() {
        prop_check!(|rng| {
            let kexp = rng.gen_range(1usize..6);
            let p = 1usize << kexp;
            let perm = Permutation::from_map(rng.permutation_map(p)).unwrap();
            let net = BenesNetwork::new(p).unwrap();
            let prog = net.route(&perm).unwrap();
            let input: Vec<usize> = (100..100 + p).collect();
            let out = net.apply(&prog, &input);
            prop_assert_eq!(out, perm.apply(&input), "perm = {}", perm);
        });
    }
}
