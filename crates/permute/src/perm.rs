//! Finite permutations and the FFT-relevant families.

use std::fmt;

/// A permutation of `{0, 1, …, n−1}`.
///
/// `map[i]` is the *destination* of element `i`: applying the permutation
/// to a slice `x` produces `y` with `y[map[i]] = x[i]`.
///
/// The FFT-relevant families are provided as constructors:
/// [`stride`](Permutation::stride) (the `L^n_s` stride permutation used
/// between butterfly stages), [`bit_reversal`](Permutation::bit_reversal)
/// and [`transpose`](Permutation::transpose) (row-major ↔ column-major
/// reordering of a 2D block, the core of the dynamic data layout).
///
/// # Example
///
/// ```
/// use permute::Permutation;
///
/// let l = Permutation::stride(8, 2).unwrap();
/// let y = l.apply(&[0, 1, 2, 3, 4, 5, 6, 7]);
/// assert_eq!(y, vec![0, 2, 4, 6, 1, 3, 5, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    map: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` points.
    pub fn identity(n: usize) -> Self {
        Permutation {
            map: (0..n).collect(),
        }
    }

    /// Builds a permutation from an explicit destination map.
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::NotBijective`] if `map` is not a
    /// bijection on `{0, …, map.len()−1}`.
    pub fn from_map(map: Vec<usize>) -> Result<Self, PermutationError> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &d in &map {
            if d >= n || seen[d] {
                return Err(PermutationError::NotBijective { len: n, value: d });
            }
            seen[d] = true;
        }
        Ok(Permutation { map })
    }

    /// The stride permutation `L^n_s`: reading a vector with stride `s`
    /// (gathering `x[0], x[s], x[2s], …`) equals applying `L^n_s`.
    ///
    /// Element `i` moves to `(i mod s)·(n/s) + ⌊i/s⌋`.
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::BadStride`] unless `s` divides `n` and
    /// both are non-zero.
    pub fn stride(n: usize, s: usize) -> Result<Self, PermutationError> {
        if n == 0 || s == 0 || !n.is_multiple_of(s) {
            return Err(PermutationError::BadStride { n, s });
        }
        let q = n / s;
        let map = (0..n).map(|i| (i % s) * q + i / s).collect();
        Ok(Permutation { map })
    }

    /// The bit-reversal permutation on `n = 2^k` points.
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::NotPowerOfTwo`] if `n` is not a power
    /// of two.
    pub fn bit_reversal(n: usize) -> Result<Self, PermutationError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(PermutationError::NotPowerOfTwo { n });
        }
        let bits = n.trailing_zeros();
        if bits == 0 {
            return Ok(Permutation::identity(n));
        }
        let map = (0..n)
            .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1))
            .collect();
        Ok(Permutation { map })
    }

    /// The transposition of an `rows × cols` row-major block: element at
    /// `(r, c)` moves to the position of `(c, r)` in the `cols × rows`
    /// row-major result. Equivalent to `L^(rows·cols)_cols`.
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::BadStride`] if either dimension is 0.
    pub fn transpose(rows: usize, cols: usize) -> Result<Self, PermutationError> {
        Self::stride(
            rows.checked_mul(cols)
                .ok_or(PermutationError::BadStride { n: 0, s: 0 })?,
            cols,
        )
    }

    /// Number of points the permutation acts on.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Destination of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn dest(&self, i: usize) -> usize {
        self.map[i]
    }

    /// The underlying destination map.
    pub fn as_map(&self) -> &[usize] {
        &self.map
    }

    /// `true` if this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &d)| i == d)
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0; self.map.len()];
        for (i, &d) in self.map.iter().enumerate() {
            inv[d] = i;
        }
        Permutation { map: inv }
    }

    /// Composition `other ∘ self`: first apply `self`, then `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two permutations act on different sizes.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot compose permutations of different sizes"
        );
        let map = self.map.iter().map(|&d| other.map[d]).collect();
        Permutation { map }
    }

    /// Applies the permutation to a slice, producing a new vector with
    /// `out[map[i]] = x[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply<T: Clone>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len(), "slice length mismatch");
        let mut out = x.to_vec();
        for (i, &d) in self.map.iter().enumerate() {
            out[d] = x[i].clone();
        }
        out
    }

    /// Applies the permutation in place using cycle chasing (no
    /// allocation beyond a visited bitmap).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply_in_place<T>(&self, x: &mut [T]) {
        assert_eq!(x.len(), self.len(), "slice length mismatch");
        let mut visited = vec![false; self.len()];
        for start in 0..self.len() {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            // Repeatedly swap the cycle's head into place: after swapping
            // with destination j, position `start` holds the element whose
            // destination is map[j], and so on around the cycle.
            let mut j = self.map[start];
            while j != start {
                visited[j] = true;
                x.swap(start, j);
                j = self.map[j];
            }
        }
    }

    /// Number of fixed points.
    pub fn fixed_points(&self) -> usize {
        self.map
            .iter()
            .enumerate()
            .filter(|(i, &d)| *i == d)
            .count()
    }

    /// Decomposes the permutation into its cycles (excluding fixed
    /// points), useful for estimating routing cost.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let mut visited = vec![false; self.len()];
        let mut cycles = Vec::new();
        for start in 0..self.len() {
            if visited[start] || self.map[start] == start {
                visited[start] = true;
                continue;
            }
            let mut cycle = vec![start];
            visited[start] = true;
            let mut i = self.map[start];
            while i != start {
                visited[i] = true;
                cycle.push(i);
                i = self.map[i];
            }
            cycles.push(cycle);
        }
        cycles
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "perm[{}](", self.len())?;
        for (i, d) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// Errors from permutation constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PermutationError {
    /// The provided map repeats or skips a destination.
    NotBijective {
        /// Size of the map.
        len: usize,
        /// The offending destination value.
        value: usize,
    },
    /// `s` does not divide `n` (or one of them is zero).
    BadStride {
        /// Number of points.
        n: usize,
        /// Requested stride.
        s: usize,
    },
    /// `n` must be a power of two.
    NotPowerOfTwo {
        /// The offending size.
        n: usize,
    },
}

impl fmt::Display for PermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermutationError::NotBijective { len, value } => {
                write!(f, "map of length {len} is not a bijection (value {value})")
            }
            PermutationError::BadStride { n, s } => {
                write!(f, "stride {s} does not evenly divide {n} points")
            }
            PermutationError::NotPowerOfTwo { n } => {
                write!(f, "{n} points is not a power of two")
            }
        }
    }
}

impl std::error::Error for PermutationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_util::{prop_assert, prop_assert_eq, prop_check, SimRng};

    #[test]
    fn identity_properties() {
        let id = Permutation::identity(8);
        assert!(id.is_identity());
        assert_eq!(id.fixed_points(), 8);
        assert!(id.cycles().is_empty());
        assert_eq!(
            id.apply(&[1, 2, 3, 4, 5, 6, 7, 8]),
            vec![1, 2, 3, 4, 5, 6, 7, 8]
        );
    }

    #[test]
    fn stride_permutation_matches_definition() {
        // L^8_2 interleaves evens then odds at the destination side:
        // y[(i%2)*4 + i/2] = x[i].
        let l = Permutation::stride(8, 2).unwrap();
        assert_eq!(
            l.apply(&[0, 1, 2, 3, 4, 5, 6, 7]),
            vec![0, 2, 4, 6, 1, 3, 5, 7]
        );
        // L^n_s composed with L^n_{n/s} is the identity.
        let l4 = Permutation::stride(8, 4).unwrap();
        assert!(l.then(&l4).is_identity());
    }

    #[test]
    fn stride_rejects_non_divisor() {
        assert_eq!(
            Permutation::stride(8, 3).unwrap_err(),
            PermutationError::BadStride { n: 8, s: 3 }
        );
        assert!(Permutation::stride(0, 1).is_err());
        assert!(Permutation::stride(8, 0).is_err());
    }

    #[test]
    fn bit_reversal_is_an_involution() {
        let r = Permutation::bit_reversal(16).unwrap();
        assert!(r.then(&r).is_identity());
        assert_eq!(r.dest(1), 8);
        assert_eq!(r.dest(3), 12);
        assert!(Permutation::bit_reversal(12).is_err());
        assert!(Permutation::bit_reversal(0).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let t = Permutation::transpose(2, 4).unwrap();
        let back = Permutation::transpose(4, 2).unwrap();
        assert!(t.then(&back).is_identity());
        // Transposing a 2x4 row-major block.
        let x = [0, 1, 2, 3, 10, 11, 12, 13];
        assert_eq!(t.apply(&x), vec![0, 10, 1, 11, 2, 12, 3, 13]);
    }

    #[test]
    fn from_map_validates() {
        assert!(Permutation::from_map(vec![1, 0, 2]).is_ok());
        assert!(Permutation::from_map(vec![1, 1, 2]).is_err());
        assert!(Permutation::from_map(vec![3, 0, 1]).is_err());
    }

    #[test]
    fn cycles_cover_non_fixed_points() {
        let p = Permutation::from_map(vec![1, 0, 2, 4, 3]).unwrap();
        let cycles = p.cycles();
        assert_eq!(cycles.len(), 2);
        assert_eq!(p.fixed_points(), 1);
        let covered: usize = cycles.iter().map(Vec::len).sum();
        assert_eq!(covered + p.fixed_points(), p.len());
    }

    #[test]
    fn display_lists_destinations() {
        let p = Permutation::from_map(vec![2, 0, 1]).unwrap();
        assert_eq!(p.to_string(), "perm[3](2 0 1)");
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn then_panics_on_size_mismatch() {
        let _ = Permutation::identity(4).then(&Permutation::identity(8));
    }

    fn arb_perm(rng: &mut SimRng, max: usize) -> Permutation {
        let n = rng.gen_range(1usize..=max);
        Permutation::from_map(rng.permutation_map(n)).expect("shuffled identity is a bijection")
    }

    #[test]
    fn inverse_composes_to_identity() {
        prop_check!(|rng| {
            let p = arb_perm(rng, 64);
            prop_assert!(p.then(&p.inverse()).is_identity(), "p = {p}");
            prop_assert!(p.inverse().then(&p).is_identity(), "p = {p}");
        });
    }

    #[test]
    fn apply_in_place_matches_apply() {
        prop_check!(|rng| {
            let p = arb_perm(rng, 64);
            let x: Vec<usize> = (100..100 + p.len()).collect();
            let expected = p.apply(&x);
            let mut y = x.clone();
            p.apply_in_place(&mut y);
            prop_assert_eq!(y, expected, "p = {}", p);
        });
    }

    #[test]
    fn apply_preserves_multiset() {
        prop_check!(|rng| {
            let p = arb_perm(rng, 64);
            let x: Vec<usize> = (0..p.len()).collect();
            let mut y = p.apply(&x);
            y.sort_unstable();
            prop_assert_eq!(y, x, "p = {}", p);
        });
    }

    #[test]
    fn composition_is_associative() {
        prop_check!(|rng| {
            let n = rng.gen_range(1usize..32);
            let mk = |rng: &mut SimRng| Permutation::from_map(rng.permutation_map(n)).unwrap();
            let (a, b, c) = (mk(rng), mk(rng), mk(rng));
            prop_assert_eq!(a.then(&b).then(&c), a.then(&b.then(&c)));
        });
    }

    #[test]
    fn stride_inverse_is_co_stride() {
        prop_check!(|rng| {
            let k = rng.gen_range(1usize..7);
            let j = rng.gen_range(0usize..7);
            let n = 1usize << k;
            let s = 1usize << (j % (k + 1));
            let l = Permutation::stride(n, s).unwrap();
            let co = Permutation::stride(n, n / s).unwrap();
            prop_assert_eq!(l.inverse(), co, "n = {}, s = {}", n, s);
        });
    }
}
