//! Permutation machinery for streaming FFT datapaths.
//!
//! The optimized 2D FFT architecture of "Optimal Dynamic Data Layouts for
//! 2D FFT on 3D Memory Integrated FPGA" relies on an on-chip permutation
//! network — crossbar switches plus data buffers, steered by a
//! controlling unit — to (a) shuffle data between butterfly stages inside
//! the 1D FFT kernel and (b) reshape row-FFT results into the block
//! dynamic data layout before they are written back to the 3D memory.
//!
//! This crate provides those pieces as reusable, well-tested components:
//!
//! * [`Permutation`] — finite permutations with the FFT-relevant families
//!   (stride `L^n_s`, bit reversal, block transposition);
//! * [`Crossbar`] — a reconfigurable `p × p` switch;
//! * [`SkewedTile`] / [`TileTransposer`] — diagonally-skewed multi-bank
//!   buffers giving conflict-free row-write/column-read transposition;
//! * [`StreamingPermuter`] — sustained `p`-per-cycle permutation of a
//!   data stream with double-buffered frames;
//! * [`ControlUnit`] — derives per-cycle bank schedules and crossbar
//!   programs, and quantifies bank conflicts/stalls.
//!
//! # Example
//!
//! ```
//! use permute::{BankSkew, ControlUnit, Permutation};
//!
//! // A 16-element transpose on an 4-lane datapath is conflict-free
//! // only with diagonal skewing.
//! let cu = ControlUnit::new(Permutation::transpose(4, 4).unwrap(), 4).unwrap();
//! assert!(cu.read_schedule(BankSkew::Diagonal).is_conflict_free());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benes;
mod control;
mod crossbar;
mod perm;
mod skewed;
mod streaming;

pub use benes::{BenesNetwork, BenesProgram};
pub use control::{BankSkew, ControlUnit, CycleAccess, Schedule};
pub use crossbar::Crossbar;
pub use perm::{Permutation, PermutationError};
pub use skewed::{SkewError, SkewedTile, TileTransposer};
pub use streaming::{StreamError, StreamingPermuter};
