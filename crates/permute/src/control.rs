//! The controlling unit: maps a permutation onto banked buffers and
//! crossbar programs, and quantifies bank conflicts.
//!
//! The paper's controlling unit (CU) "is responsible for reconfiguring
//! the permutation network to achieve the dynamic data layout". This
//! module captures the scheduling half of that job: given a frame
//! permutation and a stream width `p`, it derives, for every output
//! cycle, which buffer bank each lane must read — and therefore whether
//! the access is conflict-free (single-cycle) or must stall.

use crate::Permutation;

/// How element `j` of a frame is assigned to one of `p` buffer banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BankSkew {
    /// Naive lane-order storage: bank `j mod p`.
    None,
    /// Diagonal skew: bank `(j mod p + ⌊j/p⌋) mod p`, the classic
    /// conflict-free arrangement for transpositions.
    Diagonal,
}

impl BankSkew {
    /// Bank storing element `j` of the frame under this skew.
    pub fn bank_of(self, j: usize, p: usize) -> usize {
        match self {
            BankSkew::None => j % p,
            BankSkew::Diagonal => (j % p + j / p) % p,
        }
    }
}

/// One output cycle of a [`Schedule`]: the banks each lane reads and the
/// resulting conflict degree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleAccess {
    /// `banks[i]` = bank feeding output lane `i` this cycle.
    pub banks: Vec<usize>,
    /// Extra cycles this access needs beyond one (0 when conflict-free):
    /// the maximum number of lanes sharing one bank, minus one.
    pub stalls: usize,
}

/// A full per-cycle read schedule for one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// One entry per output cycle (`frame_len / width` of them).
    pub cycles: Vec<CycleAccess>,
}

impl Schedule {
    /// Total stall cycles across the frame.
    pub fn total_stalls(&self) -> usize {
        self.cycles.iter().map(|c| c.stalls).sum()
    }

    /// Cycles to emit one frame including stalls.
    pub fn cycles_with_stalls(&self) -> usize {
        self.cycles.len() + self.total_stalls()
    }

    /// `true` when every access is single-cycle.
    pub fn is_conflict_free(&self) -> bool {
        self.total_stalls() == 0
    }
}

/// Derives bank schedules and crossbar programs for one permutation at
/// one stream width.
///
/// # Example
///
/// ```
/// use permute::{BankSkew, ControlUnit, Permutation};
///
/// // Transposing a 4×4 tile on a 4-wide datapath.
/// let cu = ControlUnit::new(Permutation::transpose(4, 4).unwrap(), 4).unwrap();
/// assert!(!cu.read_schedule(BankSkew::None).is_conflict_free());
/// assert!(cu.read_schedule(BankSkew::Diagonal).is_conflict_free());
/// ```
#[derive(Debug, Clone)]
pub struct ControlUnit {
    perm: Permutation,
    inverse: Permutation,
    width: usize,
}

impl ControlUnit {
    /// Creates a control unit for `perm` on a `width`-wide datapath.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StreamError::BadWidth`] unless `width` divides
    /// the frame size.
    pub fn new(perm: Permutation, width: usize) -> Result<Self, crate::StreamError> {
        if width == 0 || !perm.len().is_multiple_of(width) {
            return Err(crate::StreamError::BadWidth {
                n: perm.len(),
                width,
            });
        }
        let inverse = perm.inverse();
        Ok(ControlUnit {
            perm,
            inverse,
            width,
        })
    }

    /// The permutation being scheduled.
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Stream width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Source frame index feeding output position `q`.
    pub fn source_of(&self, q: usize) -> usize {
        self.inverse.dest(q)
    }

    /// The per-cycle bank read schedule under `skew`.
    pub fn read_schedule(&self, skew: BankSkew) -> Schedule {
        let p = self.width;
        let n = self.perm.len();
        let mut cycles = Vec::with_capacity(n / p);
        for t in 0..n / p {
            let banks: Vec<usize> = (0..p)
                .map(|i| skew.bank_of(self.source_of(t * p + i), p))
                .collect();
            let mut counts = vec![0usize; p];
            for &b in &banks {
                counts[b] += 1;
            }
            let stalls = counts.iter().copied().max().unwrap_or(1).saturating_sub(1);
            cycles.push(CycleAccess { banks, stalls });
        }
        Schedule { cycles }
    }

    /// Per-cycle crossbar programs (output lane → bank) for a
    /// conflict-free schedule.
    ///
    /// Returns `None` if the schedule under `skew` has conflicts: a
    /// single `p × p` crossbar cannot realise a many-from-one-bank cycle.
    pub fn crossbar_program(&self, skew: BankSkew) -> Option<Vec<Vec<usize>>> {
        let sched = self.read_schedule(skew);
        if !sched.is_conflict_free() {
            return None;
        }
        Some(sched.cycles.into_iter().map(|c| c.banks).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_util::{prop_assert, prop_check};

    #[test]
    fn identity_is_always_conflict_free() {
        let cu = ControlUnit::new(Permutation::identity(16), 4).unwrap();
        assert!(cu.read_schedule(BankSkew::None).is_conflict_free());
        assert!(cu.read_schedule(BankSkew::Diagonal).is_conflict_free());
        assert_eq!(cu.read_schedule(BankSkew::None).cycles_with_stalls(), 4);
    }

    #[test]
    fn transpose_conflicts_without_skew() {
        let cu = ControlUnit::new(Permutation::transpose(4, 4).unwrap(), 4).unwrap();
        let naive = cu.read_schedule(BankSkew::None);
        // Every cycle gathers a column stored across one bank: worst case.
        assert_eq!(naive.total_stalls(), 4 * 3);
        let skewed = cu.read_schedule(BankSkew::Diagonal);
        assert!(skewed.is_conflict_free());
        assert!(cu.crossbar_program(BankSkew::None).is_none());
        let program = cu.crossbar_program(BankSkew::Diagonal).unwrap();
        assert_eq!(program.len(), 4);
    }

    #[test]
    fn source_of_inverts_the_permutation() {
        let p = Permutation::stride(8, 2).unwrap();
        let cu = ControlUnit::new(p.clone(), 2).unwrap();
        for j in 0..8 {
            assert_eq!(cu.source_of(p.dest(j)), j);
        }
        assert_eq!(cu.permutation(), &p);
        assert_eq!(cu.width(), 2);
    }

    #[test]
    fn constructor_validates_width() {
        assert!(ControlUnit::new(Permutation::identity(8), 3).is_err());
        assert!(ControlUnit::new(Permutation::identity(8), 0).is_err());
    }

    #[test]
    fn schedule_reads_each_bank_slot_once() {
        prop_check!(|rng| {
            let k = rng.gen_range(2usize..7);
            let wexp = rng.gen_range(1usize..4);
            let n = 1usize << k;
            let p = 1usize << wexp.min(k);
            let cu = ControlUnit::new(Permutation::from_map(rng.permutation_map(n)).unwrap(), p)
                .unwrap();
            for skew in [BankSkew::None, BankSkew::Diagonal] {
                let sched = cu.read_schedule(skew);
                // Across the whole frame each bank is read exactly n/p times.
                let mut totals = vec![0usize; p];
                for c in &sched.cycles {
                    for &b in &c.banks {
                        totals[b] += 1;
                    }
                }
                prop_assert!(
                    totals.iter().all(|&t| t == n / p),
                    "n = {n}, p = {p}, skew = {skew:?}, totals = {totals:?}"
                );
            }
        });
    }

    #[test]
    fn diagonal_skew_never_worse_on_strides() {
        prop_check!(|rng| {
            let k = rng.gen_range(2usize..7);
            let sexp = rng.gen_range(0usize..7);
            let n = 1usize << k;
            let s = 1usize << (sexp % (k + 1));
            let p = 1usize << (k / 2).clamp(1, 3);
            let cu = ControlUnit::new(Permutation::stride(n, s).unwrap(), p).unwrap();
            let naive = cu.read_schedule(BankSkew::None).total_stalls();
            let skewed = cu.read_schedule(BankSkew::Diagonal).total_stalls();
            prop_assert!(skewed <= naive, "n = {n}, s = {s}: {skewed} > {naive}");
        });
    }
}
