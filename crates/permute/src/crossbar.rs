//! A reconfigurable crossbar switch, the building block of the paper's
//! permutation network and of the DPP units' multiplexer stages.

use crate::{Permutation, PermutationError};

/// A `p × p` crossbar: each output port selects one input port, with all
/// selections distinct (the switch realises a permutation each cycle).
///
/// The controlling unit reconfigures the crossbar between (or during)
/// phases; [`reconfigurations`](Crossbar::reconfigurations) counts how
/// often, since switching activity is what the paper's energy
/// optimizations target.
///
/// # Example
///
/// ```
/// use permute::{Crossbar, Permutation};
///
/// let mut xbar = Crossbar::new(4);
/// xbar.configure(&Permutation::stride(4, 2).unwrap());
/// assert_eq!(xbar.route(&[10, 11, 12, 13]), vec![10, 12, 11, 13]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crossbar {
    /// `select[o]` = input feeding output `o`.
    select: Vec<usize>,
    reconfigurations: u64,
}

impl Crossbar {
    /// A crossbar of `ports` ports, initially configured as the identity.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "crossbar needs at least one port");
        Crossbar {
            select: (0..ports).collect(),
            reconfigurations: 0,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.select.len()
    }

    /// Programs the switch so that routing realises `perm`
    /// (output `perm.dest(i)` is fed by input `i`).
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.ports()`.
    pub fn configure(&mut self, perm: &Permutation) {
        assert_eq!(perm.len(), self.ports(), "permutation size mismatch");
        let inv = perm.inverse();
        let new: Vec<usize> = (0..self.ports()).map(|o| inv.dest(o)).collect();
        if new != self.select {
            self.reconfigurations += 1;
            self.select = new;
        }
    }

    /// Programs the switch from raw output→input selections.
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::NotBijective`] if two outputs select
    /// the same input.
    pub fn configure_raw(&mut self, select: &[usize]) -> Result<(), PermutationError> {
        let perm = Permutation::from_map(select.to_vec())?;
        // `select` is output→input; `Permutation::from_map` merely checks
        // bijectivity here.
        let _ = perm;
        if select != self.select.as_slice() {
            self.reconfigurations += 1;
            self.select = select.to_vec();
        }
        Ok(())
    }

    /// Routes one cycle's worth of data through the switch.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.ports()`.
    pub fn route<T: Clone>(&self, inputs: &[T]) -> Vec<T> {
        assert_eq!(inputs.len(), self.ports(), "input width mismatch");
        self.select.iter().map(|&i| inputs[i].clone()).collect()
    }

    /// The permutation currently realised by the switch.
    pub fn current(&self) -> Permutation {
        Permutation::from_map(self.select.clone())
            .expect("crossbar selection is always a bijection")
            .inverse()
    }

    /// How many times the configuration actually changed.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_by_default() {
        let xbar = Crossbar::new(4);
        assert_eq!(xbar.route(&[1, 2, 3, 4]), vec![1, 2, 3, 4]);
        assert!(xbar.current().is_identity());
        assert_eq!(xbar.reconfigurations(), 0);
    }

    #[test]
    fn configure_realises_permutation() {
        let mut xbar = Crossbar::new(8);
        let p = Permutation::bit_reversal(8).unwrap();
        xbar.configure(&p);
        let x: Vec<u32> = (0..8).collect();
        assert_eq!(xbar.route(&x), p.apply(&x));
        assert_eq!(xbar.current(), p);
    }

    #[test]
    fn reconfiguration_counter_ignores_no_ops() {
        let mut xbar = Crossbar::new(4);
        let p = Permutation::stride(4, 2).unwrap();
        xbar.configure(&p);
        xbar.configure(&p);
        assert_eq!(xbar.reconfigurations(), 1);
        xbar.configure(&Permutation::identity(4));
        assert_eq!(xbar.reconfigurations(), 2);
    }

    #[test]
    fn configure_raw_validates() {
        let mut xbar = Crossbar::new(3);
        assert!(xbar.configure_raw(&[2, 0, 1]).is_ok());
        assert_eq!(xbar.route(&['a', 'b', 'c']), vec!['c', 'a', 'b']);
        assert!(xbar.configure_raw(&[0, 0, 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = Crossbar::new(0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn route_checks_width() {
        let xbar = Crossbar::new(4);
        let _ = xbar.route(&[1, 2, 3]);
    }
}
