//! A streaming permutation engine over fixed-size frames.
//!
//! Realises an arbitrary permutation of an `n`-element frame on a `p`-wide
//! streaming datapath using two ping-ponged `n`-element buffers: while one
//! buffer drains in permuted order, the other fills with the next frame.
//! Throughput is a sustained `p` elements/cycle; latency is the `n/p`
//! cycles needed to fill a frame.
//!
//! The paper's DPP units achieve the same permutations with smaller
//! buffers sized per butterfly stage (their ref [4]); the double buffer
//! here trades SRAM for simplicity without changing throughput — the
//! resource model in `fpga-model` accounts for both sizings.

use crate::Permutation;

/// Streaming permuter over frames of `perm.len()` elements, `width`
/// elements per cycle.
///
/// # Example
///
/// ```
/// use permute::{Permutation, StreamingPermuter};
///
/// let perm = Permutation::bit_reversal(8).unwrap();
/// let mut sp = StreamingPermuter::new(perm.clone(), 4).unwrap();
/// let mut out = Vec::new();
/// for chunk in [[0, 1, 2, 3], [4, 5, 6, 7]] {
///     out.extend(sp.push(&chunk).unwrap());
/// }
/// out.extend(sp.flush());
/// assert_eq!(out, perm.apply(&[0, 1, 2, 3, 4, 5, 6, 7]));
/// ```
#[derive(Debug, Clone)]
pub struct StreamingPermuter<T> {
    perm: Permutation,
    width: usize,
    /// Frame being filled.
    fill: Vec<Option<T>>,
    fill_count: usize,
    /// Frame being drained (already permuted), as a FIFO of chunks.
    drain: Vec<T>,
    drain_pos: usize,
    cycles: u64,
}

/// Errors from [`StreamingPermuter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StreamError {
    /// `width` must be non-zero and divide the frame size.
    BadWidth {
        /// Frame size.
        n: usize,
        /// Offending width.
        width: usize,
    },
    /// A pushed chunk did not match the configured width.
    ChunkWidth {
        /// Supplied chunk length.
        got: usize,
        /// Configured width.
        width: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::BadWidth { n, width } => {
                write!(
                    f,
                    "width {width} must be non-zero and divide frame size {n}"
                )
            }
            StreamError::ChunkWidth { got, width } => {
                write!(f, "chunk of {got} elements on a {width}-wide stream")
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl<T: Clone> StreamingPermuter<T> {
    /// Creates an engine for `perm` with `width` elements per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::BadWidth`] unless `width` divides the frame
    /// size and is non-zero.
    pub fn new(perm: Permutation, width: usize) -> Result<Self, StreamError> {
        let n = perm.len();
        if width == 0 || n == 0 || !n.is_multiple_of(width) {
            return Err(StreamError::BadWidth { n, width });
        }
        Ok(StreamingPermuter {
            perm,
            width,
            fill: vec![None; n],
            fill_count: 0,
            drain: Vec::new(),
            drain_pos: 0,
            cycles: 0,
        })
    }

    /// Frame size in elements.
    pub fn frame_len(&self) -> usize {
        self.perm.len()
    }

    /// Stream width in elements per cycle.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Fill latency in cycles (first output appears after this many
    /// pushes).
    pub fn latency_cycles(&self) -> u64 {
        (self.frame_len() / self.width) as u64
    }

    /// Words of on-chip buffering this engine requires (two frames).
    pub fn buffer_words(&self) -> usize {
        2 * self.frame_len()
    }

    /// Cycles elapsed (one per push).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Pushes one cycle's `width` elements; returns the `width` elements
    /// leaving the engine this cycle (empty while the pipeline fills).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::ChunkWidth`] if `chunk` has the wrong
    /// length.
    pub fn push(&mut self, chunk: &[T]) -> Result<Vec<T>, StreamError> {
        if chunk.len() != self.width {
            return Err(StreamError::ChunkWidth {
                got: chunk.len(),
                width: self.width,
            });
        }
        self.cycles += 1;
        for v in chunk {
            let idx = self.fill_count;
            self.fill[self.perm.dest(idx)] = Some(v.clone());
            self.fill_count += 1;
        }
        if self.fill_count == self.frame_len() {
            // Frame complete: swap it to the drain side.
            debug_assert!(
                self.drain_pos == self.drain.len(),
                "previous frame fully drained before the next completes"
            );
            self.drain = self
                .fill
                .iter_mut()
                // simlint::allow(P101): fill_count == frame len here, so every slot is Some
                .map(|slot| slot.take().expect("complete frame has no holes"))
                .collect();
            self.drain_pos = 0;
            self.fill_count = 0;
        }
        Ok(self.pop_chunk())
    }

    /// Drains any buffered output after the input stream ends.
    pub fn flush(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        while self.drain_pos < self.drain.len() {
            self.cycles += 1;
            out.extend(self.pop_chunk());
        }
        out
    }

    fn pop_chunk(&mut self) -> Vec<T> {
        if self.drain_pos >= self.drain.len() {
            return Vec::new();
        }
        let end = (self.drain_pos + self.width).min(self.drain.len());
        let chunk = self.drain[self.drain_pos..end].to_vec();
        self.drain_pos = end;
        chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_util::{prop_assert_eq, prop_check};

    fn run_frames<T: Clone>(perm: &Permutation, width: usize, data: &[T]) -> Vec<T> {
        let mut sp = StreamingPermuter::new(perm.clone(), width).unwrap();
        let mut out = Vec::new();
        for chunk in data.chunks(width) {
            out.extend(sp.push(chunk).unwrap());
        }
        out.extend(sp.flush());
        out
    }

    #[test]
    fn single_frame_round_trip() {
        let perm = Permutation::stride(8, 2).unwrap();
        let data: Vec<u32> = (0..8).collect();
        assert_eq!(run_frames(&perm, 4, &data), perm.apply(&data));
    }

    #[test]
    fn output_is_delayed_one_frame() {
        let perm = Permutation::identity(8);
        let mut sp = StreamingPermuter::new(perm, 4).unwrap();
        assert!(sp.push(&[0, 1, 2, 3]).unwrap().is_empty());
        // Frame completes on the second push and drains immediately.
        assert_eq!(sp.push(&[4, 5, 6, 7]).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(sp.latency_cycles(), 2);
    }

    #[test]
    fn back_to_back_frames_sustain_full_rate() {
        let perm = Permutation::bit_reversal(16).unwrap();
        let frames = 5;
        let data: Vec<u32> = (0..16 * frames).collect();
        let out = run_frames(&perm, 8, &data);
        let mut expected = Vec::new();
        for f in 0..frames {
            expected.extend(perm.apply(&data[f as usize * 16..(f as usize + 1) * 16]));
        }
        assert_eq!(out, expected);
    }

    #[test]
    fn cycle_accounting() {
        let perm = Permutation::identity(8);
        let mut sp = StreamingPermuter::new(perm, 2).unwrap();
        for chunk in [[0, 1], [2, 3], [4, 5], [6, 7]] {
            sp.push(&chunk).unwrap();
        }
        let flushed = sp.flush();
        assert_eq!(flushed.len(), 6, "two elements left with the last push");
        // 4 input pushes + 3 flush cycles.
        assert_eq!(sp.cycles(), 7);
        assert_eq!(sp.buffer_words(), 16);
    }

    #[test]
    fn constructor_validates_width() {
        let perm = Permutation::identity(8);
        assert!(matches!(
            StreamingPermuter::<u32>::new(perm.clone(), 3),
            Err(StreamError::BadWidth { n: 8, width: 3 })
        ));
        assert!(StreamingPermuter::<u32>::new(perm.clone(), 0).is_err());
        let mut sp = StreamingPermuter::<u32>::new(perm, 4).unwrap();
        assert!(matches!(
            sp.push(&[1, 2]),
            Err(StreamError::ChunkWidth { got: 2, width: 4 })
        ));
        assert!(StreamError::BadWidth { n: 8, width: 3 }
            .to_string()
            .contains("divide"));
    }

    #[test]
    fn streaming_equals_batch() {
        prop_check!(|rng| {
            let k = rng.gen_range(1usize..6);
            let wexp = rng.gen_range(0usize..4);
            let frames = rng.gen_range(1usize..4);
            let n = 1usize << k;
            let width = 1usize << wexp.min(k);
            let perm = Permutation::from_map(rng.permutation_map(n)).unwrap();
            let data: Vec<u64> = (0..(n * frames) as u64).collect();
            let out = run_frames(&perm, width, &data);
            let mut expected = Vec::new();
            for f in 0..frames {
                expected.extend(perm.apply(&data[f * n..(f + 1) * n]));
            }
            prop_assert_eq!(out, expected, "perm = {}, width = {}", perm, width);
        });
    }
}
