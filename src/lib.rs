//! Umbrella crate for the reproduction of *"Optimal Dynamic Data Layouts
//! for 2D FFT on 3D Memory Integrated FPGA"* (Chen, Singapura, Prasanna,
//! 2015).
//!
//! This crate re-exports the workspace members and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//! The substance lives in the member crates:
//!
//! * [`mem3d`] — cycle-level 3D (HMC-like) memory simulator;
//! * [`permute`] — permutation networks, crossbars, skewed buffers;
//! * [`fft_kernel`] — reference FFTs + the structural streaming kernel;
//! * [`layout`] — data layouts and the Eq. (1) optimizer;
//! * [`fpga_model`] — FPGA resource/frequency model;
//! * [`fft2d`] — the assembled baseline and optimized architectures.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory and experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fft2d;
pub use fft_kernel;
pub use fpga_model;
pub use layout;
pub use mem3d;
pub use permute;

/// The paper's evaluation sizes, re-exported for examples and tests.
pub const PAPER_SIZES: [usize; 3] = [512, 1024, 2048];

#[cfg(test)]
mod tests {
    #[test]
    fn members_are_linked() {
        // Touch one symbol from every member so the umbrella actually
        // builds against all of them.
        let _ = mem3d::Geometry::default();
        let _ = permute::Permutation::identity(4);
        let _ = fft_kernel::Cplx::ZERO;
        let _ = fpga_model::Resources::ZERO;
        let _ = fft2d::System::default();
        assert_eq!(super::PAPER_SIZES.len(), 3);
    }
}
