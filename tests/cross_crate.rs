//! Cross-crate consistency: components developed in different crates
//! must agree where their semantics overlap.

use fft_kernel::{digit_reversal, fft, Cplx, DppUnit, FftDirection, KernelConfig, StreamingFft};
use layout::{
    band_block_write_trace, col_phase_trace, row_phase_trace, BlockDynamic, LayoutParams,
    MatrixLayout, RowMajor,
};
use mem3d::{Direction, Geometry, MemorySystem, Picos, TimingParams};
use permute::{Permutation, StreamingPermuter, TileTransposer};
use sim_util::{prop_assert, prop_assert_eq, prop_assume, prop_check};

fn params(n: usize) -> LayoutParams {
    LayoutParams::for_device(n, &Geometry::default(), &TimingParams::default())
}

#[test]
fn tile_transposer_agrees_with_transpose_permutation() {
    let p = 8;
    let perm = Permutation::transpose(p, p).unwrap();
    let data: Vec<u32> = (0..(p * p) as u32).collect();
    // Via the permutation object.
    let flat = perm.apply(&data);
    // Via the skewed-buffer hardware model.
    let mut tr = TileTransposer::new(p);
    let mut out = None;
    for row in data.chunks(p) {
        out = tr.push_row(row).unwrap();
    }
    let tiles: Vec<u32> = out.unwrap().into_iter().flatten().collect();
    assert_eq!(tiles, flat);
}

#[test]
fn dpp_unit_agrees_with_streaming_permuter() {
    let perm = Permutation::bit_reversal(32).unwrap();
    let data: Vec<Cplx> = (0..32).map(|i| Cplx::new(i as f64, -(i as f64))).collect();
    let mut dpp = DppUnit::new(perm.clone(), 8).unwrap();
    let mut sp = StreamingPermuter::new(perm, 8).unwrap();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for chunk in data.chunks(8) {
        a.extend(dpp.push(chunk).unwrap());
        b.extend(sp.push(chunk).unwrap());
    }
    a.extend(dpp.flush());
    b.extend(sp.flush());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.re, y.re);
        assert_eq!(x.im, y.im);
    }
}

#[test]
fn kernel_unscrambler_is_the_digit_reversal() {
    // The kernel's final permutation must be the radix's digit reversal;
    // otherwise outputs would not be in natural order.
    let n = 64;
    let rev2 = digit_reversal(n, 2).unwrap();
    let rev4 = digit_reversal(n, 4).unwrap();
    assert!(rev2.then(&rev2).is_identity());
    assert!(rev4.then(&rev4).is_identity());
    // And the kernel using them matches the reference end to end.
    let x: Vec<Cplx> = (0..n)
        .map(|i| Cplx::new((i % 5) as f64, (i % 3) as f64))
        .collect();
    let mut k = StreamingFft::new(KernelConfig::forward(n, 8)).unwrap();
    let got = k.transform(&x).unwrap();
    let expect = fft(&x, FftDirection::Forward).unwrap();
    assert!(fft_kernel::max_abs_diff(&got, &expect) < 1e-9);
}

#[test]
fn every_phase_trace_moves_each_byte_exactly_once() {
    let n = 256;
    let p = params(n);
    let ddl = BlockDynamic::with_height(&p, 32).unwrap();
    let rm = RowMajor::new(&p);
    let matrix_bytes = (n * n * 8) as u64;
    for trace in [
        row_phase_trace(&rm, Direction::Read),
        col_phase_trace(&rm, Direction::Read, 1),
        col_phase_trace(&ddl, Direction::Read, ddl.w),
        band_block_write_trace(&ddl),
    ] {
        assert_eq!(trace.total_bytes(), matrix_bytes);
    }
}

#[test]
fn replaying_layout_traces_never_leaves_the_device() {
    // Every trace generated from a layout must decode successfully on
    // the geometry the layout was derived from.
    let n = 256;
    let p = params(n);
    let ddl = BlockDynamic::with_height(&p, 64).unwrap();
    let mut mem = MemorySystem::new(Geometry::default(), TimingParams::default());
    let trace = col_phase_trace(&ddl, Direction::Read, ddl.w);
    let stats = trace.replay(&mut mem, ddl.map_kind(), None).unwrap();
    assert_eq!(stats.stats.bytes_read, (n * n * 8) as u64);
}

#[test]
fn paced_replay_never_beats_open_loop() {
    let n = 256;
    let p = params(n);
    let ddl = BlockDynamic::with_height(&p, 64).unwrap();
    let trace = col_phase_trace(&ddl, Direction::Read, ddl.w);
    let mut open = MemorySystem::new(Geometry::default(), TimingParams::default());
    let open_stats = trace.replay(&mut open, ddl.map_kind(), None).unwrap();
    let mut paced = MemorySystem::new(Geometry::default(), TimingParams::default());
    let paced_stats = trace
        .replay(&mut paced, ddl.map_kind(), Some(Picos::from_ns(300)))
        .unwrap();
    assert!(open_stats.bandwidth_gbps() >= paced_stats.bandwidth_gbps());
}

#[test]
fn block_layout_addresses_are_bijective() {
    prop_check!(cases: 16, |rng| {
        let n = 128;
        let p = params(n);
        let h = 1usize << rng.gen_range(3usize..8);
        prop_assume!(p.valid_block_heights().contains(&h));
        let ddl = BlockDynamic::with_height(&p, h).unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in 0..n {
            for c in 0..n {
                prop_assert!(seen.insert(ddl.addr(r, c)), "h = {h}: ({r}, {c}) repeats");
            }
        }
        prop_assert_eq!(seen.len(), n * n, "h = {}", h);
        prop_assert!(seen.iter().all(|a| *a < (n * n * 8) as u64), "h = {h}");
    });
}

#[test]
fn streamed_kernel_is_deterministic() {
    prop_check!(cases: 16, |rng| {
        let n = 64;
        let x: Vec<Cplx> = (0..n)
            .map(|_| Cplx::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        let mut k1 = StreamingFft::new(KernelConfig::forward(n, 4)).unwrap();
        let mut k2 = StreamingFft::new(KernelConfig::forward(n, 4)).unwrap();
        let a = k1.transform(&x).unwrap();
        let b = k2.transform(&x).unwrap();
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    });
}
