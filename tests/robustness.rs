//! Edge cases and failure injection across the public API surface:
//! degenerate sizes, disabled/enabled refresh, invalid configurations
//! and architecture-independent invariants.

use fft2d::{Architecture, PlatformEnergy, System, SystemConfig};
use fft_kernel::{Cplx, KernelConfig, StreamingFft};
use mem3d::{Geometry, MemorySystem, Picos, TimingParams};
use permute::{BenesNetwork, Permutation};

#[test]
fn tiny_matrices_still_work_end_to_end() {
    // 4x4: smaller than one DRAM row; the block layout degenerates to
    // sub-row blocks but everything must still be correct.
    let sys = System::default();
    let n = 4;
    let data: Vec<Cplx> = (0..16).map(|i| Cplx::new(i as f64, 0.0)).collect();
    let got = sys
        .functional_2dfft(Architecture::Optimized, n, &data)
        .unwrap();
    let expect = fft_kernel::fft_2d(&data, n, fft_kernel::FftDirection::Forward).unwrap();
    assert!(fft_kernel::max_abs_diff(&got, &expect) < 1e-10);
}

#[test]
fn refresh_enabled_system_still_reproduces_the_gap() {
    let cfg = SystemConfig {
        timing: TimingParams::default().with_refresh(),
        ..SystemConfig::default()
    };
    let sys = System::new(cfg);
    let base = sys.column_phase(Architecture::Baseline, 512).unwrap();
    let opt = sys.column_phase(Architecture::Optimized, 512).unwrap();
    // Refresh shaves a few percent off both; the 30x+ gap survives.
    assert!(base.throughput_gbps < 0.85);
    assert!(opt.throughput_gbps > 25.0);
    assert!(opt.throughput_gbps > 30.0 * base.throughput_gbps);
}

#[test]
fn invalid_problem_sizes_are_rejected_not_panicking() {
    let sys = System::default();
    // Non-power-of-two: kernel construction must fail cleanly.
    assert!(sys.column_phase(Architecture::Baseline, 500).is_err());
    assert!(sys.run_app(Architecture::Optimized, 300).is_err());
    assert!(sys
        .functional_2dfft(Architecture::Baseline, 100, &[])
        .is_err());
}

#[test]
fn memory_system_rejects_degenerate_devices() {
    let bad = Geometry {
        vaults: 0,
        ..Geometry::default()
    };
    assert!(MemorySystem::try_new(bad, TimingParams::default()).is_err());
    let bad_timing = TimingParams {
        t_in_row: Picos::ZERO,
        ..TimingParams::default()
    };
    assert!(MemorySystem::try_new(Geometry::default(), bad_timing).is_err());
}

#[test]
fn kernel_width_one_lane_is_valid_and_correct() {
    let mut k = StreamingFft::new(KernelConfig::forward(16, 1)).unwrap();
    let x: Vec<Cplx> = (0..16).map(|i| Cplx::new((i % 3) as f64, 0.5)).collect();
    let got = k.transform(&x).unwrap();
    let expect = fft_kernel::fft(&x, fft_kernel::FftDirection::Forward).unwrap();
    assert!(fft_kernel::max_abs_diff(&got, &expect) < 1e-10);
}

#[test]
fn benes_network_carries_kernel_width_permutations() {
    // The unscrambling permutation of an N=64 radix-4 kernel, folded to
    // the 8-lane datapath width, routes through a Beneš network.
    let net = BenesNetwork::new(8).unwrap();
    for s in [1usize, 2, 4, 8] {
        let perm = Permutation::stride(8, s).unwrap();
        let prog = net.route(&perm).unwrap();
        let data: Vec<u32> = (0..8).collect();
        assert_eq!(net.apply(&prog, &data), perm.apply(&data));
    }
}

#[test]
fn energy_report_is_consistent_with_app_result() {
    let sys = System::default();
    let coeffs = PlatformEnergy::default();
    let app = sys.run_app(Architecture::Optimized, 256).unwrap();
    let bill = sys.price_app(&app, &coeffs);
    assert_eq!(bill.n, 256);
    assert_eq!(bill.duration, app.total);
    // The itemization must be internally consistent.
    let total = bill.memory.total_pj() + bill.fpga_dynamic_pj + bill.fpga_static_pj;
    assert!((bill.total_uj() - total / 1e6).abs() < 1e-12);
}

#[test]
fn batch_runs_work_for_every_architecture() {
    let sys = System::default();
    for arch in Architecture::ALL {
        let b = sys.run_batch(arch, 256, 2).unwrap();
        assert_eq!(b.frames, 2);
        assert!(b.sustained_gbps > 0.0, "{}", arch.name());
    }
}

#[test]
fn config_changes_propagate_to_results() {
    // Halving the TSV rate halves the baseline column throughput
    // (which is activation-bound, so it should NOT change) and caps the
    // optimized one (which is bandwidth/kernel-bound, so it should).
    let slow_tsv = TimingParams {
        tsv_ps_per_byte: Picos(400), // 2.5 GB/s per vault, 40 GB/s peak
        ..TimingParams::default()
    };
    let sys = System::new(SystemConfig {
        timing: slow_tsv,
        ..SystemConfig::default()
    });
    let base = sys.column_phase(Architecture::Baseline, 512).unwrap();
    let opt = sys.column_phase(Architecture::Optimized, 512).unwrap();
    assert!(
        (base.throughput_gbps - 0.8).abs() < 0.1,
        "still activation-bound"
    );
    assert!(
        opt.throughput_gbps < 32.0,
        "now memory-bound below the kernel ceiling"
    );
    assert!(opt.throughput_gbps > 15.0);
}
