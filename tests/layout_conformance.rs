//! Layout-family conformance: every family the registry enumerates
//! must honor the [`layout::LayoutFamily`] contract, and the
//! virtualized streams must be bit-identical to the free-function
//! streams the concrete layouts shipped with before the trait existed.
//!
//! Four properties, checked across the whole registry:
//!
//! 1. **Coverage** — each phase stream (row, column, write-back)
//!    touches every element slot of the `N × N` arena exactly once,
//!    never reaches outside it, and moves exactly the bytes its
//!    `total_bytes` promised.
//! 2. **Run fidelity** — expanding every [`mem3d::TraceRun`] a stream's
//!    `next_run` hands out beat by beat reproduces the exact op
//!    sequence `next()` would have produced: the fast-path hook may
//!    group the stream, never reorder or merge it.
//! 3. **Trace thinness** — the collected `*_trace` forms are the
//!    streams, materialized: same ops, same order.
//! 4. **Phase bit-identity** — for the four families that predate the
//!    trait (row-major, col-major, tiled, block-DDL), a `run_phase`
//!    fed by the family's streams produces a [`fft2d::PhaseReport`]
//!    bit-identical to one fed by the original free-function streams.

use fft2d::{run_phase, DriverConfig, PhaseReport};
use layout::{
    band_block_write_stream, col_phase_stream, enumerate_candidates, optimal_h, row_phase_stream,
    tile_sweep_stream, BlockDynamic, ColMajor, FamilyId, LayoutParams, MatrixLayout, RowMajor,
    Tiled,
};
use mem3d::{
    Direction, Geometry, MemorySystem, Picos, RequestSource, TimingParams, TraceOp, TraceRun,
};

fn params(n: usize) -> LayoutParams {
    LayoutParams::for_device(n, &Geometry::default(), &TimingParams::default())
}

fn driver() -> DriverConfig {
    DriverConfig {
        ps_per_byte: 31.25,
        window_bytes: 256 * 1024,
        write_delay: Picos::from_ns(1000),
        latency_probe_bytes: 0,
    }
}

/// Drains `src` and checks it covers every `elem`-sized slot of the
/// `[0, n²·elem)` arena exactly once, in bounds, for exactly the bytes
/// it promised up front.
fn assert_covers(src: &mut dyn RequestSource, n: usize, elem: usize, what: &str) {
    let arena = (n * n * elem) as u64;
    assert_eq!(src.total_bytes(), arena, "{what}: total_bytes");
    let mut seen = vec![false; n * n];
    let mut moved = 0u64;
    for op in &mut *src {
        assert!(
            (op.bytes as usize).is_multiple_of(elem),
            "{what}: ragged op {op:?}"
        );
        assert!(
            op.addr.is_multiple_of(elem as u64),
            "{what}: misaligned op at {:#x}",
            op.addr
        );
        assert!(
            op.addr + op.bytes as u64 <= arena,
            "{what}: op at {:#x}+{} leaves the arena",
            op.addr,
            op.bytes
        );
        for slot in 0..(op.bytes as usize / elem) {
            let idx = op.addr as usize / elem + slot;
            assert!(!seen[idx], "{what}: slot {idx} touched twice");
            seen[idx] = true;
        }
        moved += op.bytes as u64;
    }
    assert_eq!(moved, arena, "{what}: bytes moved");
    // Every slot marked: moved == arena and no slot twice imply it,
    // but say so explicitly for the failure message.
    assert!(seen.iter().all(|&s| s), "{what}: uncovered slots");
}

/// Expands a stream run by run into the flat op sequence.
fn expand_runs(src: &mut dyn RequestSource) -> Vec<TraceOp> {
    let mut ops = Vec::new();
    while let Some(run) = src.next_run() {
        let TraceRun { op, beats, stride } = run;
        for beat in 0..beats as u64 {
            ops.push(TraceOp {
                addr: op.addr + beat * stride,
                ..op
            });
        }
    }
    ops
}

#[test]
fn every_family_stream_covers_the_arena_exactly_once() {
    for n in [64, 256] {
        let p = params(n);
        for spec in enumerate_candidates(&p) {
            let fam = spec.build(&p).expect("registry candidates build");
            let elem = p.elem_bytes;
            for dir in [Direction::Read, Direction::Write] {
                assert_covers(&mut *fam.row_stream(dir), n, elem, &format!("{spec:?} row"));
                assert_covers(&mut *fam.col_stream(dir), n, elem, &format!("{spec:?} col"));
            }
            assert_covers(
                &mut *fam.write_stream(),
                n,
                elem,
                &format!("{spec:?} write"),
            );
        }
    }
}

#[test]
fn run_expansion_reproduces_the_scalar_op_sequence() {
    let p = params(256);
    for spec in enumerate_candidates(&p) {
        let fam = spec.build(&p).expect("registry candidates build");
        let scalar: Vec<TraceOp> = fam.col_stream(Direction::Read).collect();
        let fused = expand_runs(&mut *fam.col_stream(Direction::Read));
        assert_eq!(
            scalar, fused,
            "{spec:?}: next_run reordered the column stream"
        );
        let scalar: Vec<TraceOp> = fam.write_stream().collect();
        let fused = expand_runs(&mut *fam.write_stream());
        assert_eq!(
            scalar, fused,
            "{spec:?}: next_run reordered the write stream"
        );
    }
}

#[test]
fn traces_are_materialized_streams() {
    let p = params(64);
    for spec in enumerate_candidates(&p) {
        let fam = spec.build(&p).expect("registry candidates build");
        for dir in [Direction::Read, Direction::Write] {
            let streamed: Vec<TraceOp> = fam.col_stream(dir).collect();
            let traced: Vec<TraceOp> = fam.col_trace(dir).stream().collect();
            assert_eq!(streamed, traced, "{spec:?} col {dir:?}");
            let streamed: Vec<TraceOp> = fam.row_stream(dir).collect();
            let traced: Vec<TraceOp> = fam.row_trace(dir).stream().collect();
            assert_eq!(streamed, traced, "{spec:?} row {dir:?}");
        }
        let streamed: Vec<TraceOp> = fam.write_stream().collect();
        let traced: Vec<TraceOp> = fam.write_trace().stream().collect();
        assert_eq!(streamed, traced, "{spec:?} write");
    }
}

/// One column phase through the closed-loop driver.
fn phase_of(reads: &mut dyn RequestSource, map: mem3d::AddressMapKind) -> PhaseReport {
    let mut mem = MemorySystem::new(Geometry::default(), TimingParams::default());
    run_phase(&mut mem, &driver(), reads, map, None, Picos::ZERO).expect("phase")
}

#[test]
fn family_column_phases_match_the_legacy_streams_bit_for_bit() {
    let n = 256;
    let p = params(n);

    // Row-major, both maps: the legacy stream is a group-1 column walk.
    for (param, legacy) in [(0, RowMajor::new(&p)), (1, RowMajor::interleaved(&p))] {
        let fam = FamilyId::RowMajor.build(&p, param).expect("row-major");
        let want = phase_of(
            &mut col_phase_stream(&legacy, Direction::Read, 1),
            legacy.map_kind(),
        );
        let got = phase_of(&mut *fam.col_stream(Direction::Read), fam.map_kind());
        assert_eq!(got, want, "row-major param {param}");
    }

    let legacy = ColMajor::new(&p);
    let fam = FamilyId::ColMajor.build(&p, 0).expect("col-major");
    let want = phase_of(
        &mut col_phase_stream(&legacy, Direction::Read, 1),
        legacy.map_kind(),
    );
    let got = phase_of(&mut *fam.col_stream(Direction::Read), fam.map_kind());
    assert_eq!(got, want, "col-major");

    let tr = Tiled::row_buffer_rows(&p);
    let legacy = Tiled::new(&p, tr.min(n), (p.s / tr).min(n)).expect("tiled");
    let fam = FamilyId::Tiled.build(&p, tr).expect("tiled family");
    let want = phase_of(
        &mut tile_sweep_stream(&legacy, Direction::Read),
        legacy.map_kind(),
    );
    let got = phase_of(&mut *fam.col_stream(Direction::Read), fam.map_kind());
    assert_eq!(got, want, "tiled");

    let h = optimal_h(&p);
    let legacy = BlockDynamic::with_height(&p, h).expect("ddl");
    let fam = FamilyId::BlockDynamic.build(&p, h).expect("ddl family");
    let want = phase_of(
        &mut col_phase_stream(&legacy, Direction::Read, legacy.w),
        legacy.map_kind(),
    );
    let got = phase_of(&mut *fam.col_stream(Direction::Read), fam.map_kind());
    assert_eq!(got, want, "block-ddl");
}

#[test]
fn family_write_back_matches_the_legacy_stream_bit_for_bit() {
    // The row phase of the optimized architecture: interleaved row-major
    // reads, block write-back. The family-built write side must leave
    // the driver in exactly the state the legacy stream did.
    let n = 256;
    let p = params(n);
    let input = RowMajor::interleaved(&p);
    let h = optimal_h(&p);
    let legacy = BlockDynamic::with_height(&p, h).expect("ddl");
    let fam = FamilyId::BlockDynamic.build(&p, h).expect("ddl family");

    let run = |writes: &mut dyn RequestSource, map: mem3d::AddressMapKind| {
        let mut mem = MemorySystem::new(Geometry::default(), TimingParams::default());
        run_phase(
            &mut mem,
            &driver(),
            &mut row_phase_stream(&input, Direction::Read),
            input.map_kind(),
            Some((writes, map)),
            Picos::ZERO,
        )
        .expect("row phase")
    };
    let want = run(&mut band_block_write_stream(&legacy), legacy.map_kind());
    let got = run(&mut *fam.write_stream(), fam.map_kind());
    assert_eq!(got, want, "block-ddl write-back");
}
