//! The paper's headline quantitative claims, asserted against the
//! simulator (shapes and bands, not the authors' absolute testbed
//! numbers — see EXPERIMENTS.md).

use fft2d::{improvement, Architecture, System};

/// Table 1, baseline row: ~1% of peak at 512, ~0.5% at 1024+ — the
/// column phase pays a full row activation per element once the matrix
/// row exceeds the row buffer.
#[test]
fn baseline_column_phase_utilization_band() {
    let sys = System::default();
    let r512 = sys.column_phase(Architecture::Baseline, 512).unwrap();
    assert!(
        (r512.utilization() - 0.01).abs() < 0.002,
        "512: got {:.4}",
        r512.utilization()
    );
    let r1024 = sys.column_phase(Architecture::Baseline, 1024).unwrap();
    assert!(
        (r1024.utilization() - 0.005).abs() < 0.001,
        "1024: got {:.4}",
        r1024.utilization()
    );
}

/// Table 1, optimized row: the dynamic data layout lifts the column
/// phase to the kernel's 40%-of-peak ceiling — a ~40x utilization gain.
#[test]
fn optimized_column_phase_reaches_kernel_ceiling() {
    let sys = System::default();
    let base = sys.column_phase(Architecture::Baseline, 512).unwrap();
    let opt = sys.column_phase(Architecture::Optimized, 512).unwrap();
    assert!(
        opt.utilization() > 0.30 && opt.utilization() <= 0.41,
        "got {}",
        opt.utilization()
    );
    let gain = opt.utilization() / base.utilization();
    assert!(
        gain > 30.0,
        "utilization gain {gain:.1}x; the paper reports up to 40x"
    );
}

/// Abstract: "approximately 97% improvement in throughput for the
/// complete 2D FFT application" (convention: (opt − base)/opt).
#[test]
fn whole_app_improvement_band() {
    let sys = System::default();
    let n = 512;
    let base = sys.run_app(Architecture::Baseline, n).unwrap();
    let opt = sys.run_app(Architecture::Optimized, n).unwrap();
    let imp = improvement(base.throughput_gbps, opt.throughput_gbps);
    assert!(imp > 0.90 && imp < 0.99, "got {imp:.3}");
}

/// Section 5: "latency is reduced by up to 3x".
#[test]
fn latency_is_reduced_severalfold() {
    let sys = System::default();
    let base = sys.run_app(Architecture::Baseline, 512).unwrap();
    let opt = sys.run_app(Architecture::Optimized, 512).unwrap();
    let ratio = base.latency.as_ps() as f64 / opt.latency.as_ps() as f64;
    assert!(ratio > 1.5, "latency ratio {ratio:.2}");
}

/// Fewer row activations is the mechanism behind everything: the block
/// layout activates once per DRAM row instead of once per element.
#[test]
fn activation_counts_explain_the_gap() {
    let sys = System::default();
    let n = 512;
    let base = sys.column_phase(Architecture::Baseline, n).unwrap();
    let opt = sys.column_phase(Architecture::Optimized, n).unwrap();
    // Baseline: one activation per element read (with 2 elements per row
    // at n = 512, one per two elements).
    assert!(base.activations >= (n * n / 2) as u64);
    // Optimized: one per 1024-element block.
    assert!(opt.activations <= 2 * (n * n / 1024) as u64);
}

/// The data-parallelism column of Table 2: the optimized architecture
/// keeps all lanes busy; the baseline starves them.
#[test]
fn data_parallelism_contrast() {
    let sys = System::default();
    let base = sys.run_app(Architecture::Baseline, 512).unwrap();
    let opt = sys.run_app(Architecture::Optimized, 512).unwrap();
    assert!(opt.data_parallelism > 7.0, "got {}", opt.data_parallelism);
    assert!(base.data_parallelism < 1.0, "got {}", base.data_parallelism);
}
