//! Cross-crate contract: the `sim-exec`-backed parallel design-space
//! sweep is observationally identical to the sequential reference, and
//! a diverging design point is isolated instead of killing the sweep.

use fft2d::{pareto_front, Architecture, System};
use sim_exec::{ExecConfig, JobError};

#[test]
fn parallel_explore_json_is_byte_identical_to_sequential() {
    let sys = System::default();
    let lanes = [2usize, 4, 8, 16, 3]; // the 3 exercises skip accounting
    let seq = sys
        .explore_with(&ExecConfig::sequential(), 512, &lanes)
        .unwrap();
    for threads in [2usize, 4, 8] {
        let par = sys
            .explore_with(&ExecConfig::sequential().with_threads(threads), 512, &lanes)
            .unwrap();
        assert_eq!(
            seq.to_json(),
            par.to_json(),
            "{threads}-thread sweep diverged from the sequential reference"
        );
    }
    assert!(!seq.points.is_empty());
    assert_eq!(seq.skipped.invalid_lanes, 1);
    assert!(seq.failures.is_empty());
    // Downstream consumers (the autotuner's Pareto filter) see the same
    // points in the same order.
    let front = pareto_front(&seq.points);
    assert!(!front.is_empty());
}

#[test]
fn skip_counters_surface_truncated_coverage() {
    let sys = System::default();
    // All-invalid lane options: the old API silently returned an empty
    // vec; now the reason is visible.
    let ex = sys.explore(256, &[0, 3, 7, 4096]).unwrap();
    assert!(ex.points.is_empty());
    assert_eq!(ex.skipped.invalid_lanes, 4);
    assert!(ex.skipped.to_json().contains("\"invalid_lanes\":4"));
}

#[test]
fn a_panicking_design_point_yields_a_job_error_and_the_rest_complete() {
    // A sweep over candidate sizes where one "design point" diverges:
    // the pool must report JobError::Panicked for that index only.
    let sys = System::default();
    let sizes = [128usize, 256, 0, 512]; // 0 is the poisoned candidate
    let results = sim_exec::par_map(
        &ExecConfig::sequential().with_threads(4),
        &sizes,
        |&n, _ctx| {
            assert!(n > 0, "candidate size {n} is degenerate");
            sys.column_phase(Architecture::Optimized, n)
                .expect("column phase")
                .throughput_gbps
        },
    );
    assert_eq!(results.len(), 4);
    for (i, r) in results.iter().enumerate() {
        if i == 2 {
            match r {
                Err(JobError::Panicked { index: 2, message }) => {
                    assert!(message.contains("degenerate"), "got: {message}");
                }
                other => panic!("expected a panicked JobError, got {other:?}"),
            }
        } else {
            assert!(
                *r.as_ref().expect("healthy design point") > 0.0,
                "point {i} produced no throughput"
            );
        }
    }
}
