//! The streaming refactor's observational-equivalence contract: driving
//! [`fft2d::run_phase`] from a lazy `RequestSource` stream must yield a
//! **byte-identical** [`PhaseReport`] to replaying the same phase from
//! the materialized `AccessTrace` collected off that stream — across
//! random layout families, problem sizes, driver configurations, and
//! with and without a write-back stream. If this holds, the O(N²)→O(1)
//! memory change is invisible to every consumer of the reports.

use fft2d::{run_phase, DriverConfig, PhaseReport};
use layout::{
    band_block_write_stream, col_phase_stream, row_phase_stream, tile_band_write_stream,
    tile_sweep_stream, BlockDynamic, LayoutParams, MatrixLayout, RowMajor, Tiled,
};
use mem3d::{
    AddressMapKind, Direction, Geometry, MemorySystem, Picos, RequestSource, TimingParams,
};
use sim_util::{par_check, prop_assert};

fn params(n: usize) -> LayoutParams {
    LayoutParams::for_device(n, &Geometry::default(), &TimingParams::default())
}

fn fresh_mem() -> MemorySystem {
    MemorySystem::new(Geometry::default(), TimingParams::default())
}

/// Runs the phase twice — once pulling the live streams, once replaying
/// the traces collected from identical streams — and returns both
/// reports.
#[allow(clippy::type_complexity)]
fn both_ways(
    cfg: &DriverConfig,
    start: Picos,
    reads: (&mut dyn RequestSource, &mut dyn RequestSource),
    read_map: AddressMapKind,
    writes: Option<(
        &mut dyn RequestSource,
        &mut dyn RequestSource,
        AddressMapKind,
    )>,
) -> (PhaseReport, PhaseReport) {
    let (live_reads, collect_reads) = reads;
    let (live_writes, collected_writes, write_map) = match writes {
        Some((live, collect, map)) => {
            let trace: mem3d::AccessTrace = collect.collect();
            (Some(live), Some(trace), Some(map))
        }
        None => (None, None, None),
    };

    let mut mem = fresh_mem();
    let streamed = run_phase(
        &mut mem,
        cfg,
        live_reads,
        read_map,
        live_writes.map(|w| (w, write_map.unwrap())),
        start,
    )
    .expect("streamed phase");

    let read_trace: mem3d::AccessTrace = collect_reads.collect();
    let mut mem = fresh_mem();
    let mut write_stream = collected_writes.as_ref().map(|t| t.stream());
    let materialized = run_phase(
        &mut mem,
        cfg,
        &mut read_trace.stream(),
        read_map,
        write_stream
            .as_mut()
            .map(|s| (s as &mut dyn RequestSource, write_map.unwrap())),
        start,
    )
    .expect("materialized phase");

    (streamed, materialized)
}

#[test]
fn stream_and_materialized_phases_are_byte_identical() {
    par_check!(cases: 48, |rng| {
        let n = 1usize << rng.gen_range(4u32..8); // 16..=128
        let p = params(n);
        let cfg = DriverConfig {
            ps_per_byte: [3.9, 31.25, 125.0][rng.gen_range(0usize..3)],
            window_bytes: 1u64 << rng.gen_range(10u32..19),
            write_delay: Picos::from_ns(rng.gen_range(0u64..2000)),
            latency_probe_bytes: if rng.gen_bool() { (n * 8) as u64 } else { 0 },
        };
        let start = Picos(rng.gen_range(0u64..1 << 40));
        let with_writes = rng.gen_bool();

        let (streamed, materialized) = match rng.gen_range(0usize..3) {
            // Row phase over a row-major layout, row-major write-back.
            0 => {
                let l = if rng.gen_bool() {
                    RowMajor::new(&p)
                } else {
                    RowMajor::interleaved(&p)
                };
                let r = both_ways(
                    &cfg,
                    start,
                    (
                        &mut row_phase_stream(&l, Direction::Read),
                        &mut row_phase_stream(&l, Direction::Read),
                    ),
                    l.map_kind(),
                    with_writes.then_some((
                        &mut row_phase_stream(&l, Direction::Write) as &mut dyn RequestSource,
                        &mut row_phase_stream(&l, Direction::Write) as &mut dyn RequestSource,
                        l.map_kind(),
                    )),
                );
                r
            }
            // Column phase over the block DDL, band write-back.
            1 => {
                let heights = p.valid_block_heights();
                let h = heights[rng.gen_range(0usize..heights.len())];
                let ddl = BlockDynamic::with_height(&p, h).expect("feasible height");
                let r = both_ways(
                    &cfg,
                    start,
                    (
                        &mut col_phase_stream(&ddl, Direction::Read, ddl.w),
                        &mut col_phase_stream(&ddl, Direction::Read, ddl.w),
                    ),
                    ddl.map_kind(),
                    with_writes.then_some((
                        &mut band_block_write_stream(&ddl) as &mut dyn RequestSource,
                        &mut band_block_write_stream(&ddl) as &mut dyn RequestSource,
                        ddl.map_kind(),
                    )),
                );
                r
            }
            // Tile sweep over the Akin et al. tiling, tile write-back.
            _ => {
                let t = Tiled::row_buffer_sized(&p).expect("tiled layout");
                let r = both_ways(
                    &cfg,
                    start,
                    (
                        &mut tile_sweep_stream(&t, Direction::Read),
                        &mut tile_sweep_stream(&t, Direction::Read),
                    ),
                    t.map_kind(),
                    with_writes.then_some((
                        &mut tile_band_write_stream(&t) as &mut dyn RequestSource,
                        &mut tile_band_write_stream(&t) as &mut dyn RequestSource,
                        t.map_kind(),
                    )),
                );
                r
            }
        };
        prop_assert!(
            streamed == materialized,
            "reports diverged for n = {n}:\n  streamed:     {streamed:?}\n  \
             materialized: {materialized:?}"
        );
    });
}
