//! The request-servicing fast path's contract: the cached shift/mask +
//! decode-once + closed-form-run implementation
//! ([`mem3d::ServicePath::Fast`]) must be **byte-identical** to the
//! original scalar path ([`mem3d::ServicePath::Reference`]) in every
//! observable — per-request [`mem3d::RequestOutcome`]s, accumulated
//! [`mem3d::Stats`], and whole-phase [`PhaseReport`]s — across random
//! layouts, geometries and driver configurations. If this holds, the
//! hot-path overhaul is invisible to every consumer.

use fft2d::{run_phase, DriverConfig, PhaseReport};
use layout::{
    band_block_write_stream, col_phase_stream, row_phase_stream, tile_band_write_stream,
    tile_sweep_stream, BlockDynamic, LayoutParams, MatrixLayout, RowMajor, Tiled,
};
use mem3d::{
    AddressMapKind, Direction, Geometry, MemorySystem, Picos, RequestSource, ServicePath,
    TimingParams, TraceOp,
};
use sim_util::{par_check, prop_assert, prop_assert_eq};

/// Draws a valid geometry; roughly half the draws have a
/// non-power-of-two dimension, exercising the div/mod decode fallback
/// on the fast path as well.
fn random_geom(rng: &mut sim_util::SimRng) -> Geometry {
    let dim = |rng: &mut sim_util::SimRng, pow2: bool| -> usize {
        if pow2 {
            1 << rng.gen_range(0u32..4)
        } else {
            rng.gen_range(1usize..12)
        }
    };
    let pow2 = rng.gen_bool();
    Geometry {
        vaults: dim(rng, pow2),
        layers: dim(rng, pow2),
        banks_per_layer: dim(rng, pow2),
        rows_per_bank: dim(rng, pow2).max(2),
        row_bytes: 1 << rng.gen_range(6u32..12),
    }
}

/// Runs one phase twice — on a fast-path device and on a reference-path
/// device — from identically-generated streams, returning both reports
/// and both devices for state comparison.
fn phase_both_paths(
    geom: Geometry,
    timing: TimingParams,
    cfg: &DriverConfig,
    start: Picos,
    reads: (&mut dyn RequestSource, &mut dyn RequestSource),
    read_map: AddressMapKind,
    writes: Option<(
        &mut dyn RequestSource,
        &mut dyn RequestSource,
        AddressMapKind,
    )>,
) -> (PhaseReport, PhaseReport, MemorySystem, MemorySystem) {
    let (reads_fast, reads_ref) = reads;
    let (writes_fast, writes_ref, write_map) = match writes {
        Some((a, b, map)) => (Some(a), Some(b), Some(map)),
        None => (None, None, None),
    };

    let mut fast = MemorySystem::new(geom, timing);
    assert_eq!(fast.service_path(), ServicePath::Fast);
    let fast_report = run_phase(
        &mut fast,
        cfg,
        reads_fast,
        read_map,
        writes_fast.map(|w| (w, write_map.unwrap())),
        start,
    )
    .expect("fast-path phase");

    let mut reference = MemorySystem::new(geom, timing);
    reference.set_service_path(ServicePath::Reference);
    let ref_report = run_phase(
        &mut reference,
        cfg,
        reads_ref,
        read_map,
        writes_ref.map(|w| (w, write_map.unwrap())),
        start,
    )
    .expect("reference-path phase");

    (fast_report, ref_report, fast, reference)
}

#[test]
fn fast_and_reference_phases_are_byte_identical() {
    par_check!(cases: 48, |rng| {
        let n = 1usize << rng.gen_range(4u32..8); // 16..=128
        let cfg = DriverConfig {
            ps_per_byte: [3.9, 31.25, 125.0][rng.gen_range(0usize..3)],
            window_bytes: 1u64 << rng.gen_range(10u32..19),
            write_delay: Picos::from_ns(rng.gen_range(0u64..2000)),
            latency_probe_bytes: if rng.gen_bool() { (n * 8) as u64 } else { 0 },
        };
        let start = Picos(rng.gen_range(0u64..1 << 40));
        let with_writes = rng.gen_bool();
        let timing = if rng.gen_bool() {
            TimingParams::default()
        } else {
            TimingParams::default().with_refresh()
        };

        let (fast, reference, mem_fast, mem_ref) = match rng.gen_range(0usize..3) {
            // Column phase over a row-major layout on a *random* pow2
            // geometry (the strided baseline pattern), row-major
            // write-back.
            0 => {
                let geom = Geometry {
                    vaults: 1 << rng.gen_range(0u32..5),
                    layers: 1 << rng.gen_range(0u32..3),
                    banks_per_layer: 1 << rng.gen_range(0u32..4),
                    rows_per_bank: 1 << rng.gen_range(10u32..14),
                    row_bytes: 1 << rng.gen_range(10u32..14),
                };
                let p = LayoutParams::for_device(n, &geom, &timing);
                let l = if rng.gen_bool() {
                    RowMajor::new(&p)
                } else {
                    RowMajor::interleaved(&p)
                };
                let r = phase_both_paths(
                    geom,
                    timing,
                    &cfg,
                    start,
                    (
                        &mut col_phase_stream(&l, Direction::Read, 1),
                        &mut col_phase_stream(&l, Direction::Read, 1),
                    ),
                    l.map_kind(),
                    with_writes.then_some((
                        &mut row_phase_stream(&l, Direction::Write) as &mut dyn RequestSource,
                        &mut row_phase_stream(&l, Direction::Write) as &mut dyn RequestSource,
                        l.map_kind(),
                    )),
                );
                r
            }
            // Column phase over the block DDL, band write-back.
            1 => {
                let geom = Geometry::default();
                let p = LayoutParams::for_device(n, &geom, &timing);
                let heights = p.valid_block_heights();
                let h = heights[rng.gen_range(0usize..heights.len())];
                let ddl = BlockDynamic::with_height(&p, h).expect("feasible height");
                let r = phase_both_paths(
                    geom,
                    timing,
                    &cfg,
                    start,
                    (
                        &mut col_phase_stream(&ddl, Direction::Read, ddl.w),
                        &mut col_phase_stream(&ddl, Direction::Read, ddl.w),
                    ),
                    ddl.map_kind(),
                    with_writes.then_some((
                        &mut band_block_write_stream(&ddl) as &mut dyn RequestSource,
                        &mut band_block_write_stream(&ddl) as &mut dyn RequestSource,
                        ddl.map_kind(),
                    )),
                );
                r
            }
            // Tile sweep over the Akin et al. tiling, tile write-back.
            _ => {
                let geom = Geometry::default();
                let p = LayoutParams::for_device(n, &geom, &timing);
                let t = Tiled::row_buffer_sized(&p).expect("tiled layout");
                let r = phase_both_paths(
                    geom,
                    timing,
                    &cfg,
                    start,
                    (
                        &mut tile_sweep_stream(&t, Direction::Read),
                        &mut tile_sweep_stream(&t, Direction::Read),
                    ),
                    t.map_kind(),
                    with_writes.then_some((
                        &mut tile_band_write_stream(&t) as &mut dyn RequestSource,
                        &mut tile_band_write_stream(&t) as &mut dyn RequestSource,
                        t.map_kind(),
                    )),
                );
                r
            }
        };
        prop_assert!(
            fast == reference,
            "reports diverged for n = {n}:\n  fast:      {fast:?}\n  reference: {reference:?}"
        );
        prop_assert_eq!(
            mem_fast.stats(),
            mem_ref.stats(),
            "device statistics diverged for n = {}",
            n
        );
    });
}

#[test]
fn event_core_fallback_boundaries_are_byte_identical() {
    // The skip-ahead core's contention boundaries, each differentially
    // proven against the Reference pipeline: refresh windows (always on
    // here — the same-bank classifier declines, cross-bank spans stay
    // fused *through* them), TSV-saturation crossings (kernel rates
    // from far-memory-bound to far-kernel-bound, windows from a few
    // beats to effectively unbounded) and non-power-of-two geometries
    // (div/mod decode underneath the span classifier).
    par_check!(cases: 64, |rng| {
        let n = 1usize << rng.gen_range(4u32..8); // 16..=128
        let cfg = DriverConfig {
            // 0.5 ps/B: the kernel outruns the TSVs, every span is
            // memory-bound and crosses the saturation boundary.
            // 2000 ps/B: arrivals spread out, spans are conflict-free.
            ps_per_byte: [0.5, 3.9, 125.0, 2000.0][rng.gen_range(0usize..4)],
            window_bytes: 1u64 << rng.gen_range(3u32..22),
            write_delay: Picos::from_ns(rng.gen_range(0u64..500)),
            latency_probe_bytes: if rng.gen_bool() { (n * 4) as u64 } else { 0 },
        };
        let start = Picos(rng.gen_range(0u64..1 << 30));
        let timing = TimingParams::default().with_refresh();

        let (fast, reference, mem_fast, mem_ref) = match rng.gen_range(0usize..3) {
            // Grouped block-DDL column phase: whole-row cross-bank runs
            // fused through refresh windows.
            0 => {
                let geom = Geometry::default();
                let p = LayoutParams::for_device(n, &geom, &timing);
                let heights = p.valid_block_heights();
                let h = heights[rng.gen_range(0usize..heights.len())];
                let ddl = BlockDynamic::with_height(&p, h).expect("feasible height");
                let r = phase_both_paths(
                    geom,
                    timing,
                    &cfg,
                    start,
                    (
                        &mut col_phase_stream(&ddl, Direction::Read, ddl.w),
                        &mut col_phase_stream(&ddl, Direction::Read, ddl.w),
                    ),
                    ddl.map_kind(),
                    None,
                );
                r
            }
            // Baseline strided sweep on a non-power-of-two geometry
            // sized to hold the matrix: row-multiple strides fuse as
            // cross-bank spans, the rest hits the run-probe gate.
            1 => {
                let vaults = rng.gen_range(1usize..12);
                let layers = rng.gen_range(1usize..5);
                let banks = rng.gen_range(1usize..7);
                let row_bytes = 1usize << rng.gen_range(6u32..12);
                let need = (n * n * 8) as u64;
                let rows = (need.div_ceil((vaults * layers * banks * row_bytes) as u64) as usize)
                    .max(2);
                let geom = Geometry {
                    vaults,
                    layers,
                    banks_per_layer: banks,
                    rows_per_bank: rows,
                    row_bytes,
                };
                let p = LayoutParams::for_device(n, &geom, &timing);
                let l = RowMajor::new(&p);
                let r = phase_both_paths(
                    geom,
                    timing,
                    &cfg,
                    start,
                    (
                        &mut col_phase_stream(&l, Direction::Read, 1),
                        &mut col_phase_stream(&l, Direction::Read, 1),
                    ),
                    l.map_kind(),
                    None,
                );
                r
            }
            // Interleaved strided sweep with a write side: the event
            // driver must keep every beat scalar (writes need per-beat
            // attention) and still match exactly.
            _ => {
                let geom = Geometry::default();
                let p = LayoutParams::for_device(n, &geom, &timing);
                let l = RowMajor::interleaved(&p);
                let r = phase_both_paths(
                    geom,
                    timing,
                    &cfg,
                    start,
                    (
                        &mut col_phase_stream(&l, Direction::Read, 1),
                        &mut col_phase_stream(&l, Direction::Read, 1),
                    ),
                    l.map_kind(),
                    Some((
                        &mut row_phase_stream(&l, Direction::Write) as &mut dyn RequestSource,
                        &mut row_phase_stream(&l, Direction::Write) as &mut dyn RequestSource,
                        l.map_kind(),
                    )),
                );
                r
            }
        };
        prop_assert!(
            fast == reference,
            "reports diverged for n = {n}:\n  fast:      {fast:?}\n  reference: {reference:?}"
        );
        prop_assert_eq!(
            mem_fast.stats(),
            mem_ref.stats(),
            "device statistics diverged for n = {}",
            n
        );
    });
}

#[test]
fn per_burst_outcome_sequences_match_on_random_geometries() {
    // Below the driver: every single service_burst outcome — including
    // multi-fragment bursts, arbitrary arrival times and the error
    // cases — must equal the reference path's, over random geometries
    // (power-of-two and not) and every address map kind.
    par_check!(cases: 96, |rng| {
        let g = random_geom(rng);
        let timing = if rng.gen_bool() {
            TimingParams::default()
        } else {
            TimingParams::default().with_refresh()
        };
        let kind = AddressMapKind::ALL[rng.gen_range(0usize..3)];
        let mut fast = MemorySystem::new(g, timing);
        let mut reference = MemorySystem::new(g, timing);
        reference.set_service_path(ServicePath::Reference);
        let cap = g.capacity_bytes();
        let row = g.row_bytes as u64;
        for i in 0..64u64 {
            let addr = match rng.gen_range(0usize..4) {
                // Anywhere, typically a single-fragment burst.
                0 | 1 => rng.gen_range(0u64..cap),
                // Near a row boundary, typically multi-fragment.
                2 => (rng.gen_range(0u64..cap / row) * row).saturating_sub(rng.gen_range(1u64..64)),
                // Near the device end: exercises the range check.
                _ => cap - rng.gen_range(1u64..(4 * row).min(cap)),
            };
            let bytes = match rng.gen_range(0usize..4) {
                0 => rng.gen_range(1u64..64) as u32,
                1 => rng.gen_range(1u64..2 * row) as u32,
                2 => rng.gen_range(1u64..4 * row) as u32,
                _ => 0, // zero-length: BadRequest on both paths
            };
            let dir = if rng.gen_bool() {
                Direction::Read
            } else {
                Direction::Write
            };
            let at = Picos(rng.gen_range(0u64..1 << 40));
            let op = TraceOp { addr, bytes, dir };
            let a = fast.service_burst(kind, op, at);
            let b = reference.service_burst(kind, op, at);
            prop_assert_eq!(
                a,
                b,
                "op {} diverged: {:?} {:?}+{} over {:?} ({:?})",
                i,
                dir,
                addr,
                bytes,
                g,
                kind
            );
        }
        prop_assert_eq!(fast.stats(), reference.stats(), "stats over {:?}", g);
    });
}

#[test]
fn whole_system_results_are_path_independent() {
    // At the very top of the stack: Table-1/Table-2 style results from
    // `fft2d::System` must not depend on the configured service path.
    use fft2d::{Architecture, System, SystemConfig};
    let fast = System::new(SystemConfig::default());
    let reference = System::new(SystemConfig {
        service_path: ServicePath::Reference,
        ..SystemConfig::default()
    });
    for arch in Architecture::ALL {
        let n = 128;
        let a = fast.column_phase(arch, n).expect("fast column phase");
        let b = reference
            .column_phase(arch, n)
            .expect("reference column phase");
        assert_eq!(a, b, "{arch:?} column phase diverged");
        let a = fast.run_app(arch, n).expect("fast app");
        let b = reference.run_app(arch, n).expect("reference app");
        assert_eq!(a, b, "{arch:?} app diverged");
    }
}
