//! End-to-end numeric verification: the simulated architectures compute
//! the mathematical 2D FFT, for every architecture and a range of sizes.

use fft2d::{Architecture, System};
use fft_kernel::{fft_2d, max_abs_diff, Cplx, FftDirection};
use sim_util::SimRng;

fn random_matrix(n: usize, seed: u64) -> Vec<Cplx> {
    SimRng::seed_from_u64(seed).gen_complex_vec(n * n, -1.0..1.0, Cplx::new)
}

#[test]
fn functional_2dfft_matches_reference_across_sizes() {
    let sys = System::default();
    for n in [16usize, 32, 64, 128] {
        let data = random_matrix(n, n as u64);
        let reference = fft_2d(&data, n, FftDirection::Forward).unwrap();
        for arch in Architecture::ALL {
            if arch == Architecture::Tiled && n < 32 {
                // Row-buffer-sized tiles need at least a 32x32 matrix.
                continue;
            }
            let got = sys.functional_2dfft(arch, n, &data).unwrap();
            let err = max_abs_diff(&got, &reference);
            assert!(err < 1e-7, "{} at n = {n}: error {err}", arch.name());
        }
    }
}

#[test]
fn impulse_transforms_to_all_ones() {
    let sys = System::default();
    let n = 64;
    let mut data = vec![Cplx::ZERO; n * n];
    data[0] = Cplx::ONE;
    let got = sys
        .functional_2dfft(Architecture::Optimized, n, &data)
        .unwrap();
    for v in got {
        assert!((v - Cplx::ONE).abs() < 1e-9);
    }
}

#[test]
fn constant_transforms_to_single_spike() {
    let sys = System::default();
    let n = 32;
    let data = vec![Cplx::ONE; n * n];
    let got = sys
        .functional_2dfft(Architecture::Baseline, n, &data)
        .unwrap();
    assert!((got[0] - Cplx::new((n * n) as f64, 0.0)).abs() < 1e-8);
    for v in &got[1..] {
        assert!(v.abs() < 1e-8);
    }
}

#[test]
fn both_architectures_agree_exactly_in_shape() {
    // The two architectures differ only in *where* data lives; their
    // numeric results must agree to rounding.
    let sys = System::default();
    let n = 64;
    let data = random_matrix(n, 99);
    let a = sys
        .functional_2dfft(Architecture::Baseline, n, &data)
        .unwrap();
    let b = sys
        .functional_2dfft(Architecture::Optimized, n, &data)
        .unwrap();
    assert!(max_abs_diff(&a, &b) < 1e-10);
}

#[test]
fn inverse_direction_round_trips_through_the_architecture() {
    let sys = System::default();
    let n = 64;
    let data = random_matrix(n, 5);
    let fwd = sys
        .functional_2dfft(Architecture::Optimized, n, &data)
        .unwrap();
    let back = sys
        .functional_2dfft_dir(Architecture::Optimized, n, &fwd, FftDirection::Inverse)
        .unwrap();
    assert!(max_abs_diff(&data, &back) < 1e-9);
}

#[test]
fn tiled_architecture_sits_between_baseline_and_ddl() {
    let sys = System::default();
    let n = 512;
    let base = sys.column_phase(Architecture::Baseline, n).unwrap();
    let tiled = sys.column_phase(Architecture::Tiled, n).unwrap();
    let opt = sys.column_phase(Architecture::Optimized, n).unwrap();
    // Tiling fixes the activation problem (same activation count as the
    // DDL), but its static tile-column traversal keeps each column sweep
    // inside one vault, so it cannot exploit the third dimension's
    // parallelism — the dynamic layout's diagonal placement can.
    assert_eq!(tiled.activations, opt.activations);
    assert!(tiled.throughput_gbps > 5.0 * base.throughput_gbps);
    assert!(opt.throughput_gbps > 3.0 * tiled.throughput_gbps);
}

#[test]
fn linearity_holds_through_the_architecture() {
    let sys = System::default();
    let n = 32;
    let x = random_matrix(n, 1);
    let y = random_matrix(n, 2);
    let sum: Vec<Cplx> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
    let fx = sys
        .functional_2dfft(Architecture::Optimized, n, &x)
        .unwrap();
    let fy = sys
        .functional_2dfft(Architecture::Optimized, n, &y)
        .unwrap();
    let fsum = sys
        .functional_2dfft(Architecture::Optimized, n, &sum)
        .unwrap();
    let expect: Vec<Cplx> = fx.iter().zip(&fy).map(|(a, b)| *a + *b).collect();
    assert!(max_abs_diff(&fsum, &expect) < 1e-9);
}
