//! Quickstart: simulate the paper's headline experiment in ~30 lines.
//!
//! Builds the default 3D MI-FPGA system (16-vault, 80 GB/s stack; 8-lane,
//! 500 MHz kernel), measures the column-wise FFT phase under the baseline
//! and the dynamic data layout, and verifies the architecture computes a
//! correct 2D FFT.
//!
//! Run with: `cargo run --release --example quickstart`

use fft2d::{improvement, Architecture, System};
use fft_kernel::{fft_2d, max_abs_diff, Cplx, FftDirection};
use sim_util::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = System::default();
    println!(
        "Device: {} vaults, {:.0} GB/s peak; kernel: {} lanes -> {:.0} GB/s ceiling",
        sys.config().geometry.vaults,
        sys.config().geometry.vaults as f64 * sys.config().timing.vault_peak_gbps(),
        sys.config().lanes,
        32.0,
    );

    // 1. Performance: the column-wise FFT phase, the paper's Table 1.
    let n = 512;
    let base = sys.column_phase(Architecture::Baseline, n)?;
    let opt = sys.column_phase(Architecture::Optimized, n)?;
    println!(
        "column-wise FFT, N = {n}: baseline {:.2} GB/s ({:.1}% of peak) vs \
         optimized {:.2} GB/s ({:.1}% of peak)",
        base.throughput_gbps,
        base.utilization() * 100.0,
        opt.throughput_gbps,
        opt.utilization() * 100.0,
    );
    println!(
        "improvement (paper convention): {:.1}%",
        improvement(base.throughput_gbps, opt.throughput_gbps) * 100.0
    );

    // 2. Correctness: the simulated dataflow equals the mathematical 2D FFT.
    let m = 64;
    let mut rng = SimRng::seed_from_u64(1);
    let data: Vec<Cplx> = (0..m * m)
        .map(|_| Cplx::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let simulated = sys.functional_2dfft(Architecture::Optimized, m, &data)?;
    let reference = fft_2d(&data, m, FftDirection::Forward)?;
    println!(
        "functional 2D FFT ({m}x{m}) max error vs reference: {:.2e}",
        max_abs_diff(&simulated, &reference)
    );
    Ok(())
}
