//! Layout explorer: sweep every feasible block height for a problem size
//! on a configurable device, compare the simulator's best against the
//! paper's Eq. (1) closed form, and show the reorganization cost of each
//! choice.
//!
//! Run with: `cargo run --release --example layout_explorer [N]`

use layout::{optimal_h, optimal_h_bounded, search_optimal_h, LayoutParams, ReorgCost};
use mem3d::{Geometry, MemorySystem, Picos, TimingParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1024);

    let geom = Geometry {
        vaults: 8,
        layers: 2,
        banks_per_layer: 4,
        rows_per_bank: 8192,
        row_bytes: 2048,
    };
    let timing = TimingParams::default();
    let params = LayoutParams::for_device(n, &geom, &timing);
    let mem = MemorySystem::new(geom, timing);

    println!(
        "device: {} vaults x {} layers x {} banks, {} B rows (s = {} elements, b = {})",
        geom.vaults, geom.layers, geom.banks_per_layer, geom.row_bytes, params.s, params.b
    );
    println!(
        "problem: N = {n} ({} MiB working set)",
        params.matrix_bytes() >> 20
    );
    println!();
    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>16} {:>14}",
        "h", "w", "col GB/s", "activations", "reorg buffer", "reorg fill"
    );

    let results = search_optimal_h(&params, &mem)?;
    let mut sorted = results.clone();
    sorted.sort_by_key(|m| m.h);
    for m in &sorted {
        let cost = ReorgCost::evaluate(&params, m.h, 8, Picos::from_ns(2));
        println!(
            "{:>6} {:>6} {:>14.2} {:>14} {:>13} KiB {:>14}",
            m.h,
            m.w,
            m.col_bandwidth_gbps,
            m.activations,
            cost.buffer_bytes >> 10,
            cost.fill_latency,
        );
    }
    println!();
    println!("simulator best:      h = {}", results[0].h);
    println!("Eq. (1) closed form: h = {}", optimal_h(&params));
    println!(
        "Eq. (1) bounded to 2 MiB of reorganization SRAM: h = {}",
        optimal_h_bounded(&params, 2 << 20)
    );
    Ok(())
}
