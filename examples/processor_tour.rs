//! A tour of the instantiated architecture (the paper's Figs. 1–3):
//! memory stack geometry and timing, the streaming kernel's component
//! inventory, the permutation network's conflict-free schedules, and the
//! FPGA cost of the whole processor.
//!
//! Run with: `cargo run --release --example processor_tour`

use fft2d::ProcessorModel;
use fpga_model::resources::devices::VIRTEX7_690T;
use layout::LayoutParams;
use mem3d::{Geometry, TimingParams};
use permute::{BankSkew, ControlUnit, Permutation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 1: the 3D memory stack.
    let geom = Geometry::default();
    let timing = TimingParams::default();
    println!("== Fig. 1: 3D memory integrated FPGA ==");
    println!(
        "{} vaults x {} layers x {} banks/layer, {} KiB rows, {} GiB total",
        geom.vaults,
        geom.layers,
        geom.banks_per_layer,
        geom.row_bytes >> 10,
        geom.capacity_bytes() >> 30
    );
    println!(
        "timing: t_in_row {}, t_diff_row {}, t_diff_bank {}, t_in_vault {}",
        timing.t_in_row, timing.t_diff_row, timing.t_diff_bank, timing.t_in_vault
    );
    println!(
        "per-vault TSV link {:.1} GB/s -> device peak {:.0} GB/s",
        timing.vault_peak_gbps(),
        geom.vaults as f64 * timing.vault_peak_gbps()
    );
    println!();

    // Fig. 2: kernel components for a 1024-point FFT at 8 lanes.
    let n = 1024;
    let params = LayoutParams::for_device(n, &geom, &timing);
    let proc = ProcessorModel::new(&params, 8, 128, &VIRTEX7_690T)?;
    let k = proc.kernel_resources();
    println!(
        "== Fig. 2: 1D FFT kernel ({n}-point, {:?}) ==",
        proc.kernel_config().radix
    );
    println!(
        "{} stages, {} radix blocks, {} complex adders, {} complex multipliers",
        k.stages, k.radix_blocks, k.complex_adders, k.complex_multipliers
    );
    println!(
        "twiddle ROMs {} KiB, data buffers {} KiB, fill latency {}",
        k.rom_bytes >> 10,
        (k.buffer_words * 8) >> 10,
        proc.kernel_latency()
    );
    println!();

    // The permutation network's controlling unit in action.
    println!("== Permutation network / controlling unit ==");
    let cu = ControlUnit::new(Permutation::transpose(8, 8)?, 8)?;
    let naive = cu.read_schedule(BankSkew::None);
    let skewed = cu.read_schedule(BankSkew::Diagonal);
    println!(
        "8x8 transpose on 8 lanes: naive banking stalls {} extra cycles, \
         diagonal skew stalls {}",
        naive.total_stalls(),
        skewed.total_stalls()
    );
    println!();

    // Fig. 3: the full processor on the FPGA.
    println!("== Fig. 3: 2D FFT processor on Virtex-7 690T ==");
    println!("resources: {}", proc.fpga().resources);
    println!(
        "achieved clock {:.0} MHz -> kernel bandwidth {:.1} GB/s \
         ({} lanes x 8 B)",
        proc.fpga().clock_mhz,
        proc.kernel_bandwidth_gbps(),
        proc.kernel_config().width
    );
    Ok(())
}
