//! Frequency-domain image filtering — the kind of workload the paper's
//! introduction motivates (image processing on FPGA accelerators).
//!
//! Builds a synthetic image (smooth gradient + high-frequency noise),
//! runs it through the *simulated architecture's* forward 2D FFT, applies
//! an ideal low-pass mask in the frequency domain, inverts with the
//! reference inverse transform, and shows that the noise energy drops
//! while the underlying gradient survives.
//!
//! Run with: `cargo run --release --example image_filter`

use fft2d::{Architecture, System};
use fft_kernel::{fft_2d, Cplx, FftDirection};
use sim_util::SimRng;

fn energy(img: &[Cplx]) -> f64 {
    img.iter().map(|v| v.norm_sqr()).sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let mut rng = SimRng::seed_from_u64(7);

    // Smooth scene plus additive high-frequency noise.
    let clean: Vec<Cplx> = (0..n * n)
        .map(|i| {
            let (r, c) = (i / n, i % n);
            let v = ((r as f64 / n as f64) * std::f64::consts::PI).sin()
                + ((c as f64 / n as f64) * 2.0 * std::f64::consts::PI).cos();
            Cplx::new(v, 0.0)
        })
        .collect();
    let noisy: Vec<Cplx> = clean
        .iter()
        .map(|v| *v + Cplx::new(rng.gen_range(-0.5..0.5), 0.0))
        .collect();

    // Forward transform through the simulated optimized architecture.
    let sys = System::default();
    let mut spectrum = sys.functional_2dfft(Architecture::Optimized, n, &noisy)?;

    // Ideal low-pass: keep the lowest `cutoff` frequencies per axis.
    let cutoff = 8;
    for r in 0..n {
        for c in 0..n {
            let fr = r.min(n - r);
            let fc = c.min(n - c);
            if fr >= cutoff || fc >= cutoff {
                spectrum[r * n + c] = Cplx::ZERO;
            }
        }
    }

    // Inverse via the reference transform.
    let filtered = fft_2d(&spectrum, n, FftDirection::Inverse)?;

    let err_before: f64 = noisy
        .iter()
        .zip(&clean)
        .map(|(a, b)| (*a - *b).norm_sqr())
        .sum::<f64>()
        / (n * n) as f64;
    let err_after: f64 = filtered
        .iter()
        .zip(&clean)
        .map(|(a, b)| (*a - *b).norm_sqr())
        .sum::<f64>()
        / (n * n) as f64;

    println!("image {n}x{n}, ideal low-pass cutoff = {cutoff}");
    println!(
        "scene energy: {:.1}, noisy energy: {:.1}",
        energy(&clean),
        energy(&noisy)
    );
    println!("mean-square error vs clean scene: before {err_before:.4}, after {err_after:.4}");
    assert!(
        err_after < err_before / 2.0,
        "filtering must remove most noise energy"
    );
    println!("low-pass filtering through the simulated 2D FFT removed the noise.");
    Ok(())
}
