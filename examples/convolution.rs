//! FFT-based 2D convolution — the classic signal-processing workload a
//! 2D FFT accelerator exists for. Convolves a synthetic radar-style
//! image with a small point-spread kernel two ways:
//!
//! 1. directly in the spatial domain (O(n²·k²)), and
//! 2. via the convolution theorem, with **both** the forward and inverse
//!    transforms running through the simulated architecture
//!    (`functional_2dfft_dir`),
//!
//! and checks they agree.
//!
//! Run with: `cargo run --release --example convolution`

use fft2d::{Architecture, System};
use fft_kernel::{max_abs_diff, Cplx, FftDirection};
use sim_util::SimRng;

/// Circular spatial-domain convolution (reference).
fn convolve_direct(img: &[Cplx], kernel: &[Cplx], n: usize) -> Vec<Cplx> {
    let mut out = vec![Cplx::ZERO; n * n];
    for r in 0..n {
        for c in 0..n {
            let mut acc = Cplx::ZERO;
            for kr in 0..n {
                for kc in 0..n {
                    let k = kernel[kr * n + kc];
                    if k.abs() == 0.0 {
                        continue;
                    }
                    let sr = (r + n - kr) % n;
                    let sc = (c + n - kc) % n;
                    acc += img[sr * n + sc] * k;
                }
            }
            out[r * n + c] = acc;
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    let mut rng = SimRng::seed_from_u64(3);
    let img: Vec<Cplx> = (0..n * n)
        .map(|_| Cplx::new(rng.gen_range(-1.0..1.0), 0.0))
        .collect();

    // A 3x3 sharpening kernel embedded in an n x n zero field.
    let mut kernel = vec![Cplx::ZERO; n * n];
    let taps = [
        (0usize, 0usize, 5.0),
        (0, 1, -1.0),
        (1, 0, -1.0),
        (0, n - 1, -1.0),
        (n - 1, 0, -1.0),
    ];
    for (r, c, v) in taps {
        kernel[r * n + c] = Cplx::new(v, 0.0);
    }

    let sys = System::default();
    let arch = Architecture::Optimized;

    // Convolution theorem through the simulated accelerator.
    let fi = sys.functional_2dfft(arch, n, &img)?;
    let fk = sys.functional_2dfft(arch, n, &kernel)?;
    let product: Vec<Cplx> = fi.iter().zip(&fk).map(|(a, b)| *a * *b).collect();
    let via_fft = sys.functional_2dfft_dir(arch, n, &product, FftDirection::Inverse)?;

    // Direct spatial reference.
    let direct = convolve_direct(&img, &kernel, n);

    let err = max_abs_diff(&via_fft, &direct);
    println!("2D circular convolution, {n}x{n} image, 5-tap sharpening kernel");
    println!("max |FFT-based - direct| = {err:.3e}");
    assert!(
        err < 1e-8,
        "convolution theorem must hold through the architecture"
    );
    println!("the simulated accelerator's forward+inverse transforms convolve correctly.");
    Ok(())
}
